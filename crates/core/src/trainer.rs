//! Offline training (paper §III-D): SUFE + domain adaptation, optimizing
//! the Eq. (5) total loss with AdamW.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use logsynergy_nn::graph::Graph;
use logsynergy_nn::loss::{bce_with_logits, cross_entropy};
use logsynergy_nn::ops;
use logsynergy_nn::optim::AdamW;
use logsynergy_nn::Tensor;

use crate::config::TrainConfig;
use crate::data::PreparedSystem;
use crate::model::LogSynergyModel;

/// Domain-adaptation variant used during training. The paper adopts DAAN
/// (adversarial, with the dynamic factor ω); linear-MMD distribution
/// matching (§II-A's classic alternative) is provided for the design
/// ablations, as is disabling adaptation entirely.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DaMode {
    /// DAAN: adversarial global + class-conditional classifiers through a
    /// gradient-reversal layer (the paper's choice).
    Daan,
    /// Linear MMD: minimize the squared distance between the source and
    /// target mean unified-feature embeddings.
    Mmd,
    /// No domain adaptation.
    Off,
}

/// Which optional modules participate (the Fig. 5 ablation switches).
#[derive(Copy, Clone, Debug)]
pub struct TrainOptions {
    /// SUFE (system classifier + CLUB MI disentanglement). Off =
    /// "LogSynergy w/o SUFE".
    pub use_sufe: bool,
    /// Domain-adaptation variant.
    pub da: DaMode,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            use_sufe: true,
            da: DaMode::Daan,
        }
    }
}

/// Flattened multi-system training set.
pub struct TrainingSet {
    /// Per-sample flattened `[T * D]` feature rows.
    pub x: Vec<Vec<f32>>,
    /// Anomaly labels.
    pub y: Vec<f32>,
    /// System-classification labels (`0..K`).
    pub sys: Vec<usize>,
    /// Domain labels (0 = source, 1 = target).
    pub dom: Vec<f32>,
    /// Window length.
    pub t: usize,
    /// Embedding dimension.
    pub d: usize,
    /// Number of systems `K`.
    pub num_systems: usize,
}

/// Assembles the paper's training mixture: `n_source` sequences spread over
/// each (mature) source system plus the first `n_target` sequences of the
/// target (continuous selection, §IV-A1). System label = position in
/// `[sources..., target]`; domain label 1 for the target.
pub fn build_training_set(
    sources: &[&PreparedSystem],
    target: &PreparedSystem,
    n_source: usize,
    n_target: usize,
    max_len: usize,
    dim: usize,
) -> TrainingSet {
    let mut x = Vec::new();
    let mut y = Vec::new();
    let mut sys = Vec::new();
    let mut dom = Vec::new();
    let push = |samples: &[crate::data::SeqSample],
                embeddings: &[Vec<f32>],
                sys_label: usize,
                dom_label: f32,
                x: &mut Vec<Vec<f32>>,
                y: &mut Vec<f32>,
                sys: &mut Vec<usize>,
                dom: &mut Vec<f32>| {
        for s in samples {
            let mut row = vec![0.0f32; max_len * dim];
            for (t, &e) in s.events.iter().take(max_len).enumerate() {
                row[t * dim..(t + 1) * dim].copy_from_slice(&embeddings[e as usize]);
            }
            x.push(row);
            y.push(if s.label { 1.0 } else { 0.0 });
            sys.push(sys_label);
            dom.push(dom_label);
        }
    };
    for (k, src) in sources.iter().enumerate() {
        let picked = src.spread(n_source);
        push(
            &picked,
            &src.event_embeddings,
            k,
            0.0,
            &mut x,
            &mut y,
            &mut sys,
            &mut dom,
        );
    }
    let tgt_head = target.head(n_target);
    push(
        &tgt_head,
        &target.event_embeddings,
        sources.len(),
        1.0,
        &mut x,
        &mut y,
        &mut sys,
        &mut dom,
    );
    TrainingSet {
        x,
        y,
        sys,
        dom,
        t: max_len,
        d: dim,
        num_systems: sources.len() + 1,
    }
}

/// Per-epoch loss breakdown.
#[derive(Clone, Debug, Default)]
pub struct EpochStats {
    /// Mean anomaly-classification loss (Eq. 2).
    pub loss_anomaly: f32,
    /// Mean system-classification loss (Eq. 1).
    pub loss_system: f32,
    /// Mean CLUB MI bound (Eq. 3).
    pub loss_mi: f32,
    /// Mean DA loss (Eq. 4, ω-mixed).
    pub loss_da: f32,
    /// Mean total loss (Eq. 5).
    pub total: f32,
    /// DAAN dynamic factor ω at the end of the epoch.
    pub omega: f32,
    /// Training anomaly-classification accuracy (logit sign vs. label).
    pub accuracy: f32,
    /// Mean pre-clip global gradient L2 norm across the epoch's batches.
    pub grad_norm: f32,
    /// GRL lambda after the Ganin warmup ramp for this epoch.
    pub grl_lambda: f32,
    /// Wall time of the epoch in milliseconds.
    pub epoch_ms: f64,
}

/// Trains `model` on `set`, returning per-epoch statistics.
pub fn train(
    model: &mut LogSynergyModel,
    set: &TrainingSet,
    cfg: &TrainConfig,
    options: TrainOptions,
) -> Vec<EpochStats> {
    assert_eq!(set.num_systems, model.config().num_systems, "K mismatch");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = AdamW::new(&model.store, cfg.lr);
    let n = set.x.len();
    assert!(n > 0, "empty training set");
    let mut order: Vec<usize> = (0..n).collect();
    let mut history = Vec::with_capacity(cfg.epochs);
    // DAAN dynamic adversarial factor, re-estimated every epoch.
    let mut omega = 0.5f32;

    let total_steps = cfg.epochs.max(1);
    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        // Ganin-style GRL warmup: lambda ramps from 0 to cfg.grl_lambda.
        let p = epoch as f32 / total_steps as f32;
        let grl = cfg.grl_lambda * (2.0 / (1.0 + (-5.0 * p).exp()) - 1.0 + 0.2).min(1.0);

        let epoch_start = std::time::Instant::now();
        let mut stats = EpochStats {
            omega,
            grl_lambda: grl,
            ..EpochStats::default()
        };
        let mut correct = 0usize;
        let mut seen = 0usize;
        let mut batches = 0usize;
        let mut sum_glob = 0.0f32;
        let mut sum_cond = 0.0f32;
        for chunk in order.chunks(cfg.batch_size) {
            if chunk.len() < 2 {
                continue; // CLUB negatives and BN-free training want >= 2
            }
            let b = chunk.len();
            let mut xb = vec![0.0f32; b * set.t * set.d];
            let mut yb = Vec::with_capacity(b);
            let mut sysb = Vec::with_capacity(b);
            let mut domb = Vec::with_capacity(b);
            for (row, &i) in chunk.iter().enumerate() {
                xb[row * set.t * set.d..(row + 1) * set.t * set.d].copy_from_slice(&set.x[i]);
                yb.push(set.y[i]);
                sysb.push(set.sys[i]);
                domb.push(set.dom[i]);
            }

            let g = Graph::new();
            let x = g.input(Tensor::new(xb, &[b, set.t, set.d]));
            let f = model.features(&g, x, &mut rng);
            let logits = model.anomaly_logits(&g, f);
            let l_anom = bce_with_logits(&g, logits, &yb);
            let mut total = l_anom;

            let mut l_sys_v = 0.0;
            let mut l_mi_v = 0.0;
            if options.use_sufe {
                let sys_logits = model.system_logits(&g, f);
                let l_sys = cross_entropy(&g, sys_logits, &sysb);
                l_sys_v = g.value(l_sys).item();
                total = ops::add(&g, total, l_sys);

                let mi = model.mi_loss(&g, f);
                l_mi_v = g.value(mi).item();
                // Only a positive MI estimate is worth pushing down.
                let mi_pos = ops::relu(&g, mi);
                total = ops::add(&g, total, ops::scale(&g, mi_pos, cfg.lambda_mi));

                let club_nll = model.club_learning_loss(&g, f);
                total = ops::add(&g, total, club_nll);
            }

            let mut l_da_v = 0.0;
            if options.da == DaMode::Daan {
                let da = model.da_losses(&g, f, logits, &domb, grl);
                let gv = g.value(da.global).item();
                let cv = g.value(da.conditional).item();
                sum_glob += gv;
                sum_cond += cv;
                l_da_v = omega * gv + (1.0 - omega) * cv;
                let mixed = ops::add(
                    &g,
                    ops::scale(&g, da.global, omega),
                    ops::scale(&g, da.conditional, 1.0 - omega),
                );
                total = ops::add(&g, total, ops::scale(&g, mixed, cfg.lambda_da));
            } else if options.da == DaMode::Mmd {
                let src_idx: Vec<usize> = domb
                    .iter()
                    .enumerate()
                    .filter(|(_, &d)| d < 0.5)
                    .map(|(i, _)| i)
                    .collect();
                let tgt_idx: Vec<usize> = domb
                    .iter()
                    .enumerate()
                    .filter(|(_, &d)| d >= 0.5)
                    .map(|(i, _)| i)
                    .collect();
                if !src_idx.is_empty() && !tgt_idx.is_empty() {
                    let fs = ops::select_rows(&g, f.unified, &src_idx);
                    let ft = ops::select_rows(&g, f.unified, &tgt_idx);
                    let ms = ops::mean_axis(&g, fs, 0, false);
                    let mt = ops::mean_axis(&g, ft, 0, false);
                    let diff = ops::sub(&g, ms, mt);
                    let mmd = ops::sum_all(&g, ops::square(&g, diff));
                    l_da_v = g.value(mmd).item();
                    total = ops::add(&g, total, ops::scale(&g, mmd, cfg.lambda_da));
                }
            }

            let total_v = g.value(total).item();
            correct += g
                .value(logits)
                .data()
                .iter()
                .zip(&yb)
                .filter(|(&logit, &y)| (logit > 0.0) == (y > 0.5))
                .count();
            seen += b;
            g.backward(total);
            g.write_grads(&mut model.store);
            stats.grad_norm += if cfg.grad_clip > 0.0 {
                model.store.clip_grad_norm(cfg.grad_clip)
            } else {
                model.store.grad_norm()
            };
            opt.step(&mut model.store);

            stats.loss_anomaly += g.value(l_anom).item();
            stats.loss_system += l_sys_v;
            stats.loss_mi += l_mi_v;
            stats.loss_da += l_da_v;
            stats.total += total_v;
            batches += 1;
        }
        let b = batches.max(1) as f32;
        stats.loss_anomaly /= b;
        stats.loss_system /= b;
        stats.loss_mi /= b;
        stats.loss_da /= b;
        stats.total /= b;
        stats.grad_norm /= b;
        stats.accuracy = correct as f32 / seen.max(1) as f32;
        stats.epoch_ms = epoch_start.elapsed().as_secs_f64() * 1e3;

        if options.da == DaMode::Daan && batches > 0 {
            // DAAN dynamic factor: ω = d_g / (d_g + d_c), with the proxy
            // A-distance d = 2(1 - 2ε) and classifier error ε estimated
            // from the BCE loss (ε ≈ loss / (2 ln 2), clamped).
            let eps = |loss: f32| (loss / (2.0 * std::f32::consts::LN_2)).clamp(0.0, 0.5);
            let d_g = 2.0 * (1.0 - 2.0 * eps(sum_glob / b));
            let d_c = 2.0 * (1.0 - 2.0 * eps(sum_cond / b));
            let denom = d_g + d_c;
            omega = if denom.abs() > 1e-6 {
                (d_g / denom).clamp(0.05, 0.95)
            } else {
                0.5
            };
        }
        stats.omega = omega;
        publish_epoch(epoch, &stats);
        history.push(stats);
    }
    history
}

/// Pushes one epoch's statistics into the global telemetry registry as
/// `train.*` series keyed by epoch index — the per-epoch training dynamics
/// surfaced by `--metrics-out` / the `/metrics` endpoint.
fn publish_epoch(epoch: usize, stats: &EpochStats) {
    if !logsynergy_telemetry::enabled() {
        return;
    }
    let train = logsynergy_telemetry::global().scoped("train");
    let e = epoch as u64;
    train.series("loss_total").push(e, stats.total as f64);
    train
        .series("loss_anomaly")
        .push(e, stats.loss_anomaly as f64);
    train
        .series("loss_system")
        .push(e, stats.loss_system as f64);
    train.series("loss_mi").push(e, stats.loss_mi as f64);
    train.series("loss_da").push(e, stats.loss_da as f64);
    train.series("accuracy").push(e, stats.accuracy as f64);
    train.series("grad_norm").push(e, stats.grad_norm as f64);
    train.series("omega").push(e, stats.omega as f64);
    train.series("grl_lambda").push(e, stats.grl_lambda as f64);
    train.series("epoch_ms").push(e, stats.epoch_ms);
    train.counter("epochs").inc();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::data::SeqSample;
    use logsynergy_loggen::SystemId;

    /// A tiny synthetic PreparedSystem: two "templates" whose embeddings are
    /// orthogonal; anomalous sequences contain template 1.
    fn toy_system(system: SystemId, n: usize, anomaly_every: usize, dim: usize) -> PreparedSystem {
        let mut e0 = vec![0.0; dim];
        e0[0] = 1.0;
        let mut e1 = vec![0.0; dim];
        e1[1] = 1.0;
        // Give each system a system-specific direction too.
        let mut e0s = e0.clone();
        e0s[2 + system.index()] = 0.5;
        let sequences = (0..n)
            .map(|i| {
                let anom = anomaly_every > 0 && i % anomaly_every == 0;
                SeqSample {
                    events: vec![if anom { 1 } else { 0 }; 5],
                    label: anom,
                }
            })
            .collect();
        PreparedSystem {
            system,
            sequences,
            event_embeddings: vec![e0s, e1],
            event_texts: vec!["normal".into(), "anomaly".into()],
            templates: vec!["normal".into(), "anomaly".into()],
            review_stats: Default::default(),
        }
    }

    fn tiny_cfg() -> (ModelConfig, TrainConfig) {
        let mut m = ModelConfig::scaled(3);
        m.embed_dim = 12;
        m.d_model = 16;
        m.heads = 2;
        m.ff = 32;
        m.layers = 1;
        m.head_hidden = 16;
        m.max_len = 5;
        m.dropout = 0.0;
        let mut t = TrainConfig::scaled();
        t.epochs = 4;
        t.batch_size = 32;
        t.n_source = 120;
        t.n_target = 30;
        (m, t)
    }

    #[test]
    fn training_reduces_total_loss() {
        let (mcfg, tcfg) = tiny_cfg();
        let mut rng = StdRng::seed_from_u64(91);
        let mut model = LogSynergyModel::new(mcfg.clone(), &mut rng);
        let s1 = toy_system(SystemId::Bgl, 150, 4, mcfg.embed_dim);
        let s2 = toy_system(SystemId::Spirit, 150, 5, mcfg.embed_dim);
        let tgt = toy_system(SystemId::SystemB, 60, 7, mcfg.embed_dim);
        let set = build_training_set(
            &[&s1, &s2],
            &tgt,
            tcfg.n_source,
            tcfg.n_target,
            mcfg.max_len,
            mcfg.embed_dim,
        );
        let hist = train(&mut model, &set, &tcfg, TrainOptions::default());
        assert_eq!(hist.len(), tcfg.epochs);
        assert!(
            hist.last().unwrap().total < hist[0].total,
            "loss should drop: {:?} -> {:?}",
            hist[0].total,
            hist.last().unwrap().total
        );
    }

    #[test]
    fn training_set_layout_and_labels() {
        let (mcfg, _) = tiny_cfg();
        let s1 = toy_system(SystemId::Bgl, 20, 4, mcfg.embed_dim);
        let tgt = toy_system(SystemId::SystemB, 10, 5, mcfg.embed_dim);
        let set = build_training_set(&[&s1], &tgt, 15, 8, mcfg.max_len, mcfg.embed_dim);
        assert_eq!(set.x.len(), 15 + 8);
        assert_eq!(set.num_systems, 2);
        assert!(set.sys[..15].iter().all(|&k| k == 0));
        assert!(set.sys[15..].iter().all(|&k| k == 1));
        assert!(set.dom[..15].iter().all(|&d| d == 0.0));
        assert!(set.dom[15..].iter().all(|&d| d == 1.0));
    }

    #[test]
    fn ablation_switches_skip_their_losses() {
        let (mcfg, mut tcfg) = tiny_cfg();
        tcfg.epochs = 1;
        let mut rng = StdRng::seed_from_u64(92);
        let mut model = LogSynergyModel::new(mcfg.clone(), &mut rng);
        let s1 = toy_system(SystemId::Bgl, 80, 4, mcfg.embed_dim);
        let s2 = toy_system(SystemId::Spirit, 80, 4, mcfg.embed_dim);
        let tgt = toy_system(SystemId::SystemB, 40, 5, mcfg.embed_dim);
        let set = build_training_set(&[&s1, &s2], &tgt, 60, 20, mcfg.max_len, mcfg.embed_dim);
        let hist = train(
            &mut model,
            &set,
            &tcfg,
            TrainOptions {
                use_sufe: false,
                da: DaMode::Off,
            },
        );
        assert_eq!(hist[0].loss_system, 0.0);
        assert_eq!(hist[0].loss_mi, 0.0);
        assert_eq!(hist[0].loss_da, 0.0);
        assert!(hist[0].loss_anomaly > 0.0);
    }

    #[test]
    fn omega_stays_in_unit_interval() {
        let (mcfg, mut tcfg) = tiny_cfg();
        tcfg.epochs = 3;
        let mut rng = StdRng::seed_from_u64(93);
        let mut model = LogSynergyModel::new(mcfg.clone(), &mut rng);
        let s1 = toy_system(SystemId::Bgl, 100, 4, mcfg.embed_dim);
        let s2 = toy_system(SystemId::Spirit, 100, 4, mcfg.embed_dim);
        let tgt = toy_system(SystemId::SystemB, 40, 5, mcfg.embed_dim);
        let set = build_training_set(&[&s1, &s2], &tgt, 80, 30, mcfg.max_len, mcfg.embed_dim);
        let hist = train(&mut model, &set, &tcfg, TrainOptions::default());
        for h in &hist {
            assert!((0.0..=1.0).contains(&h.omega), "omega {}", h.omega);
        }
    }
}
