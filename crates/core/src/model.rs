//! The LogSynergy network (paper §III-D1, Fig. 3): feature extractor `F`
//! (Transformer encoder), anomaly classifier `C_anomaly`, system classifier
//! `C_system`, mutual-information module `MI` (CLUB), and domain-adaptation
//! module `DA` (DAAN with a gradient-reversal layer).

use rand::Rng;

use logsynergy_nn::graph::{Graph, ParamStore, Var};
use logsynergy_nn::layers::{Activation, Linear, Mlp, TransformerEncoder};
use logsynergy_nn::ops;

use crate::club::Club;
use crate::config::ModelConfig;

/// The full trainable model. Only `F` (extractor) and `C_anomaly` are used
/// online; the remaining modules exist to shape training (§III-D1).
pub struct LogSynergyModel {
    /// All parameters (extractor, heads, CLUB, domain classifiers).
    pub store: ParamStore,
    config: ModelConfig,
    input_proj: Linear,
    encoder: TransformerEncoder,
    c_anomaly: Mlp,
    c_system: Mlp,
    club: Club,
    d_global: Mlp,
    d_cond_normal: Mlp,
    d_cond_anomaly: Mlp,
}

/// The two disentangled feature halves of a batch.
#[derive(Copy, Clone)]
pub struct Features {
    /// System-unified features `F_u(x)` — drive anomaly detection.
    pub unified: Var,
    /// System-specific features `F_s(x)` — drive system classification.
    pub specific: Var,
}

/// The domain-adaptation module's two loss components (DAAN's global and
/// class-conditional alignment; the trainer mixes them with the dynamic
/// factor ω).
pub struct DaLosses {
    /// Marginal (global) domain-classifier loss.
    pub global: Var,
    /// Mean of the class-conditional domain-classifier losses.
    pub conditional: Var,
}

impl LogSynergyModel {
    /// Builds a fresh model.
    pub fn new<R: Rng>(config: ModelConfig, rng: &mut R) -> Self {
        config.validate();
        let mut store = ParamStore::new();
        let half = config.half_dim();
        let input_proj = Linear::new(
            &mut store,
            rng,
            "input_proj",
            config.embed_dim,
            config.d_model,
        );
        let encoder = TransformerEncoder::new(
            &mut store,
            rng,
            "encoder",
            config.d_model,
            config.heads,
            config.ff,
            config.layers,
            config.max_len,
            config.dropout,
        );
        let c_anomaly = Mlp::new(
            &mut store,
            rng,
            "c_anomaly",
            &[half, config.head_hidden, 1],
            Activation::Relu,
        );
        let c_system = Mlp::new(
            &mut store,
            rng,
            "c_system",
            &[half, config.head_hidden, config.num_systems],
            Activation::Relu,
        );
        let club = Club::new(&mut store, rng, "club", half, config.head_hidden, half);
        let d_global = Mlp::new(
            &mut store,
            rng,
            "d_global",
            &[half, config.head_hidden, 1],
            Activation::Relu,
        );
        let d_cond_normal = Mlp::new(
            &mut store,
            rng,
            "d_cond_normal",
            &[half, config.head_hidden, 1],
            Activation::Relu,
        );
        let d_cond_anomaly = Mlp::new(
            &mut store,
            rng,
            "d_cond_anomaly",
            &[half, config.head_hidden, 1],
            Activation::Relu,
        );
        LogSynergyModel {
            store,
            config,
            input_proj,
            encoder,
            c_anomaly,
            c_system,
            club,
            d_global,
            d_cond_normal,
            d_cond_anomaly,
        }
    }

    /// Model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The CLUB estimator (exposed for the trainer's estimator step).
    pub fn club(&self) -> &Club {
        &self.club
    }

    /// The embedding → model-width input projection (for inference engines
    /// that read the frozen weights directly).
    pub fn input_proj(&self) -> &Linear {
        &self.input_proj
    }

    /// The Transformer feature extractor `F`.
    pub fn encoder(&self) -> &TransformerEncoder {
        &self.encoder
    }

    /// The anomaly classifier head `C_anomaly`.
    pub fn c_anomaly(&self) -> &Mlp {
        &self.c_anomaly
    }

    /// Extracts and disentangles features from a `[B, T, embed_dim]` batch:
    /// projection → Transformer encoder → mean pooling → split into the
    /// equal-width `F_u` / `F_s` halves (§III-D2).
    pub fn features<R: Rng + ?Sized>(&self, g: &Graph, x: Var, rng: &mut R) -> Features {
        let h = self.input_proj.forward(g, &self.store, x);
        let pooled = self.encoder.encode_pooled(g, &self.store, h, rng);
        let half = self.config.half_dim();
        Features {
            unified: ops::slice_last(g, pooled, 0, half),
            specific: ops::slice_last(g, pooled, half, half),
        }
    }

    /// Anomaly logits `[B]` from system-unified features (Eq. 2's input).
    pub fn anomaly_logits(&self, g: &Graph, f: Features) -> Var {
        let logits = self.c_anomaly.forward(g, &self.store, f.unified);
        let b = g.shape_of(logits)[0];
        ops::reshape(g, logits, &[b])
    }

    /// System logits `[B, K]` from system-specific features (Eq. 1's input).
    pub fn system_logits(&self, g: &Graph, f: Features) -> Var {
        self.c_system.forward(g, &self.store, f.specific)
    }

    /// CLUB MI upper bound between the two halves (Eq. 3).
    pub fn mi_loss(&self, g: &Graph, f: Features) -> Var {
        self.club
            .mi_upper_bound(g, &self.store, f.unified, f.specific)
    }

    /// CLUB estimator training loss (detached features).
    pub fn club_learning_loss(&self, g: &Graph, f: Features) -> Var {
        self.club
            .learning_loss(g, &self.store, f.unified, f.specific)
    }

    /// DAAN losses (Eq. 4): domain classifiers on GRL-reversed unified
    /// features. `domain_labels` are 0 = source, 1 = target. Conditional
    /// alignment soft-weights samples by the (detached) predicted anomaly
    /// probability, following DAAN's class-conditional subnetworks.
    pub fn da_losses(
        &self,
        g: &Graph,
        f: Features,
        anomaly_logits: Var,
        domain_labels: &[f32],
        grl_lambda: f32,
    ) -> DaLosses {
        let rev = ops::grl(g, f.unified, grl_lambda);
        let b = g.shape_of(rev)[0];

        let glob_logits = self.d_global.forward(g, &self.store, rev);
        let glob_flat = ops::reshape(g, glob_logits, &[b]);
        let global = logsynergy_nn::loss::bce_with_logits(g, glob_flat, domain_labels);

        // Class weights: p(anomaly) detached, reshaped to [B, 1].
        let p = ops::sigmoid(g, ops::detach(g, anomaly_logits));
        let p_col = ops::reshape(g, p, &[b, 1]);
        let one_minus = ops::add_scalar(g, ops::neg(g, p_col), 1.0);

        let weighted_norm = ops::mul(g, rev, one_minus);
        let weighted_anom = ops::mul(g, rev, p_col);
        let ln = {
            let l = self.d_cond_normal.forward(g, &self.store, weighted_norm);
            let l = ops::reshape(g, l, &[b]);
            logsynergy_nn::loss::bce_with_logits(g, l, domain_labels)
        };
        let la = {
            let l = self.d_cond_anomaly.forward(g, &self.store, weighted_anom);
            let l = ops::reshape(g, l, &[b]);
            logsynergy_nn::loss::bce_with_logits(g, l, domain_labels)
        };
        let cond_sum = ops::add(g, ln, la);
        let conditional = ops::scale(g, cond_sum, 0.5);
        DaLosses {
            global,
            conditional,
        }
    }

    /// Number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logsynergy_nn::Tensor;
    use rand::SeedableRng;

    fn model() -> LogSynergyModel {
        let mut rng = rand::rngs::StdRng::seed_from_u64(81);
        let mut cfg = ModelConfig::scaled(3);
        cfg.embed_dim = 16;
        cfg.d_model = 16;
        cfg.heads = 2;
        cfg.ff = 32;
        cfg.layers = 1;
        cfg.head_hidden = 16;
        LogSynergyModel::new(cfg, &mut rng)
    }

    #[test]
    fn features_split_into_equal_halves() {
        let m = model();
        let mut rng = rand::rngs::StdRng::seed_from_u64(82);
        let g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[4, 10, 16], 1.0));
        let f = m.features(&g, x, &mut rng);
        assert_eq!(g.shape_of(f.unified), vec![4, 8]);
        assert_eq!(g.shape_of(f.specific), vec![4, 8]);
    }

    #[test]
    fn heads_produce_expected_shapes() {
        let m = model();
        let mut rng = rand::rngs::StdRng::seed_from_u64(83);
        let g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[5, 10, 16], 1.0));
        let f = m.features(&g, x, &mut rng);
        assert_eq!(g.shape_of(m.anomaly_logits(&g, f)), vec![5]);
        assert_eq!(g.shape_of(m.system_logits(&g, f)), vec![5, 3]);
    }

    #[test]
    fn da_gradient_is_adversarial_on_extractor() {
        // The GRL means: a step that *reduces* the domain classifier's loss
        // must push the extractor toward *increasing* it. We check that
        // gradients flow to both the domain head and the encoder.
        let m = model();
        let mut rng = rand::rngs::StdRng::seed_from_u64(84);
        let g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[4, 10, 16], 1.0));
        let f = m.features(&g, x, &mut rng);
        let logits = m.anomaly_logits(&g, f);
        let da = m.da_losses(&g, f, logits, &[0.0, 0.0, 1.0, 1.0], 1.0);
        let total = ops::add(&g, da.global, da.conditional);
        g.backward(total);
        let mut store = m.store;
        g.write_grads(&mut store);
        let grads_by_prefix = |p: &str| {
            store
                .ids()
                .filter(|&id| store.name(id).starts_with(p))
                .map(|id| store.grad(id).norm())
                .sum::<f32>()
        };
        assert!(grads_by_prefix("d_global") > 0.0);
        assert!(
            grads_by_prefix("encoder") > 0.0,
            "GRL must pass gradient into the extractor"
        );
        assert!(
            grads_by_prefix("c_anomaly") == 0.0,
            "detached class weights must not train C_anomaly"
        );
    }

    #[test]
    fn mi_loss_is_finite_and_backpropagates_to_encoder() {
        let m = model();
        let mut rng = rand::rngs::StdRng::seed_from_u64(85);
        let g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[4, 10, 16], 1.0));
        let f = m.features(&g, x, &mut rng);
        let mi = m.mi_loss(&g, f);
        assert!(g.value(mi).item().is_finite());
        g.backward(mi);
        let mut store = m.store;
        g.write_grads(&mut store);
        let enc: f32 = store
            .ids()
            .filter(|&id| store.name(id).starts_with("encoder"))
            .map(|id| store.grad(id).norm())
            .sum();
        assert!(enc > 0.0);
    }

    #[test]
    fn parameter_count_is_reported() {
        let m = model();
        assert!(m.num_parameters() > 1000);
    }
}
