//! Property tests for the corpus generator's invariants.

use logsynergy_loggen::{datasets, ontology, SyntaxProfile, SystemId};
use proptest::prelude::*;
use rand::SeedableRng;

fn system_strategy() -> impl Strategy<Value = SystemId> {
    prop_oneof![
        Just(SystemId::Bgl),
        Just(SystemId::Spirit),
        Just(SystemId::Thunderbird),
        Just(SystemId::SystemA),
        Just(SystemId::SystemB),
        Just(SystemId::SystemC),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Labels always agree with the ground-truth concept's anomaly flag.
    #[test]
    fn labels_match_concepts(sys in system_strategy(), scale in 0.0005f64..0.003) {
        let all = ontology();
        let ds = datasets::spec_for(sys).generate(scale);
        for r in &ds.records {
            prop_assert_eq!(r.anomalous, all[r.concept.0 as usize].anomalous);
        }
    }

    /// Anomalous logs stay a bounded minority even under heavy boost.
    #[test]
    fn boost_respects_the_density_cap(sys in system_strategy(), boost in 1.0f64..50.0) {
        let ds = datasets::spec_for(sys).generate_with(0.002, boost);
        let rate = ds.num_anomalous_logs() as f64 / ds.records.len() as f64;
        prop_assert!(rate < 0.35, "{sys:?} boost {boost}: log anomaly rate {rate}");
    }

    /// More scale, more logs (monotone generation size).
    #[test]
    fn scale_is_monotone(sys in system_strategy(), a in 0.0005f64..0.002, extra in 0.001f64..0.004) {
        let small = datasets::spec_for(sys).generate(a).records.len();
        let large = datasets::spec_for(sys).generate(a + extra).records.len();
        prop_assert!(large > small, "{small} !< {large}");
    }

    /// Rendered messages tokenize into at least prefix + body tokens, and
    /// every body token is invertible by the profile's reverse lexicon.
    #[test]
    fn rendered_messages_are_invertible(sys in system_strategy(), concept_idx in 0usize..34, seed in 0u64..1000) {
        let all = ontology();
        let profile = SyntaxProfile::new(sys, &all);
        let c = &all[concept_idx];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let msg = profile.render(c, &mut rng);
        prop_assert!(msg.split_whitespace().count() > c.tokens.len());
        for &t in c.tokens {
            let surface = profile.surface(t).to_string();
            prop_assert!(
                msg.contains(&surface),
                "{sys:?}/{}: surface {surface} missing in {msg}",
                c.name
            );
        }
    }

    /// The continuous stream's timestamps never go backwards.
    #[test]
    fn timestamps_monotone(sys in system_strategy()) {
        let ds = datasets::spec_for(sys).generate(0.001);
        for w in ds.records.windows(2) {
            prop_assert!(w[0].timestamp <= w[1].timestamp);
        }
    }
}
