//! The six built-in dataset specifications, mirroring Table III.
//!
//! Log counts and anomalous-sequence targets are the paper's numbers; a
//! scale factor at generation time shrinks them proportionally for
//! CPU-budget experiments. Each system's anomaly-concept set is chosen so
//! the cross-system coverage relations the paper reports hold:
//!
//! - within each group, each target's anomalies are *mostly* covered by the
//!   other two systems (Tables IV/V ordering);
//! - BGL and Spirit are anomaly-rich supercomputers that cover System B and
//!   System C respectively, while the reverse transfers are partial
//!   (the Fig. 6 "Lesson Learned" asymmetry).

use crate::corpus::DatasetSpec;
use crate::ontology::ConceptId;
use crate::profile::SystemId;

fn ids(v: &[u16]) -> Vec<ConceptId> {
    v.iter().map(|&i| ConceptId(i)).collect()
}

// Standard onset schedule: the first two concepts are present from the
// start of the stream; later ones appear progressively deeper, landing in
// the continuous split's test region.

/// Onsets for a normal-concept list: 0.0 everywhere except the ids in
/// `late`, which appear at 30% of the stream (new workloads rolled out
/// after the detection model's training slice).
fn normal_onsets(list: &[u16], late: &[u16]) -> Vec<f64> {
    list.iter()
        .map(|id| if late.contains(id) { 0.3 } else { 0.0 })
        .collect()
}

fn onsets(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            if i == 0 {
                0.0
            } else {
                0.12 + 0.06 * (i as f64 - 1.0)
            }
        })
        .collect()
}

// Anomaly concept ids (see `ontology::ontology` order):
// 20 network_interruption, 21 parity_error, 22 memory_oom, 23 disk_failure,
// 24 kernel_panic, 25 auth_failure_burst, 26 replication_lag,
// 27 service_crash, 28 filesystem_corruption, 29 thermal_overheat,
// 30 packet_loss, 31 deadlock_detected.

/// BGL — anomaly-rich supercomputer (Table III row 1).
pub fn bgl() -> DatasetSpec {
    let anomalies = [20u16, 21, 22, 23, 24, 27, 28, 29, 31];
    DatasetSpec {
        system: SystemId::Bgl,
        n_logs: 1_356_817,
        target_anomalous_sequences: 29_092,
        normal_concepts: ids(&[0, 1, 4, 5, 6, 7, 8, 11, 12, 13, 14, 15, 16, 17]),
        normal_onsets: normal_onsets(
            &[0, 1, 4, 5, 6, 7, 8, 11, 12, 13, 14, 15, 16, 17],
            &[12, 16],
        ),
        anomaly_concepts: ids(&anomalies),
        anomaly_onsets: onsets(anomalies.len()),
        seed: 0xB61,
    }
}

/// Spirit — anomaly-rich supercomputer (Table III row 2).
pub fn spirit() -> DatasetSpec {
    let anomalies = [20u16, 21, 23, 24, 25, 26, 27, 30];
    DatasetSpec {
        system: SystemId::Spirit,
        n_logs: 4_783_733,
        target_anomalous_sequences: 8_857,
        normal_concepts: ids(&[0, 1, 2, 4, 5, 7, 8, 10, 11, 12, 13, 16, 17, 19, 32]),
        normal_onsets: normal_onsets(
            &[0, 1, 2, 4, 5, 7, 8, 10, 11, 12, 13, 16, 17, 19, 32],
            &[5, 8],
        ),
        anomaly_concepts: ids(&anomalies),
        anomaly_onsets: onsets(anomalies.len()),
        seed: 0x521,
    }
}

/// Thunderbird (Table III row 3) — anomalies fully covered by BGL ∪ Spirit.
pub fn thunderbird() -> DatasetSpec {
    let anomalies = [20u16, 22, 23, 27, 28, 30];
    DatasetSpec {
        system: SystemId::Thunderbird,
        n_logs: 700_005,
        target_anomalous_sequences: 5_946,
        normal_concepts: ids(&[0, 1, 3, 4, 5, 6, 8, 9, 11, 12, 13, 15, 16, 18, 32]),
        normal_onsets: normal_onsets(
            &[0, 1, 3, 4, 5, 6, 8, 9, 11, 12, 13, 15, 16, 18, 32],
            &[11, 32],
        ),
        anomaly_concepts: ids(&anomalies),
        anomaly_onsets: onsets(anomalies.len()),
        seed: 0x7B1,
    }
}

/// ISP System A (Table III row 4) — CDMS service; auth anomalies are its
/// own (uncovered by B/C).
pub fn system_a() -> DatasetSpec {
    let anomalies = [20u16, 25, 26, 27, 22];
    DatasetSpec {
        system: SystemId::SystemA,
        n_logs: 2_166_422,
        target_anomalous_sequences: 886,
        normal_concepts: ids(&[0, 1, 2, 3, 4, 5, 6, 9, 10, 15, 16, 17, 18, 19, 32]),
        normal_onsets: normal_onsets(
            &[0, 1, 2, 3, 4, 5, 6, 9, 10, 15, 16, 17, 18, 19, 32],
            &[6, 19],
        ),
        anomaly_concepts: ids(&anomalies),
        anomaly_onsets: onsets(anomalies.len()),
        seed: 0xA01,
    }
}

/// ISP System B (Table III row 5) — simple system fully covered by BGL.
pub fn system_b() -> DatasetSpec {
    let anomalies = [20u16, 27, 22];
    DatasetSpec {
        system: SystemId::SystemB,
        n_logs: 877_444,
        target_anomalous_sequences: 296,
        normal_concepts: ids(&[0, 1, 2, 3, 5, 6, 7, 8, 14, 15, 16, 17, 18, 19]),
        normal_onsets: normal_onsets(&[0, 1, 2, 3, 5, 6, 7, 8, 14, 15, 16, 17, 18, 19], &[6, 16]),
        anomaly_concepts: ids(&anomalies),
        anomaly_onsets: onsets(anomalies.len()),
        seed: 0xB02,
    }
}

/// ISP System C (Table III row 6) — fully covered by Spirit; only partially
/// by A ∪ B.
pub fn system_c() -> DatasetSpec {
    let anomalies = [20u16, 21, 26, 27, 30];
    DatasetSpec {
        system: SystemId::SystemC,
        n_logs: 691_433,
        target_anomalous_sequences: 5_170,
        normal_concepts: ids(&[0, 1, 2, 4, 6, 7, 9, 10, 11, 12, 13, 14, 16, 19, 33]),
        normal_onsets: normal_onsets(
            &[0, 1, 2, 4, 6, 7, 9, 10, 11, 12, 13, 14, 16, 19, 33],
            &[2, 19],
        ),
        anomaly_concepts: ids(&anomalies),
        anomaly_onsets: onsets(anomalies.len()),
        seed: 0xC03,
    }
}

/// Spec for a system by id.
pub fn spec_for(system: SystemId) -> DatasetSpec {
    match system {
        SystemId::Bgl => bgl(),
        SystemId::Spirit => spirit(),
        SystemId::Thunderbird => thunderbird(),
        SystemId::SystemA => system_a(),
        SystemId::SystemB => system_b(),
        SystemId::SystemC => system_c(),
    }
}

/// The paper's two evaluation groups: (targets iterate within a group,
/// sources are the other two members).
pub fn public_group() -> [SystemId; 3] {
    [SystemId::Bgl, SystemId::Spirit, SystemId::Thunderbird]
}

/// The ISP/CDMS group.
pub fn isp_group() -> [SystemId; 3] {
    [SystemId::SystemA, SystemId::SystemB, SystemId::SystemC]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn thunderbird_covered_by_group() {
        let t: HashSet<_> = thunderbird().anomaly_concepts.into_iter().collect();
        let mut cover: HashSet<_> = bgl().anomaly_concepts.into_iter().collect();
        cover.extend(spirit().anomaly_concepts);
        assert!(t.is_subset(&cover));
    }

    #[test]
    fn bgl_target_misses_some_concepts() {
        let t: HashSet<_> = bgl().anomaly_concepts.into_iter().collect();
        let mut cover: HashSet<_> = spirit().anomaly_concepts.into_iter().collect();
        cover.extend(thunderbird().anomaly_concepts);
        let missed = t.difference(&cover).count();
        assert!(missed >= 2, "BGL should be the hardest public target");
    }

    #[test]
    fn fig6_coverage_asymmetry() {
        // Rich -> simple covers; simple -> rich does not.
        let b: HashSet<_> = system_b().anomaly_concepts.into_iter().collect();
        let bgl_set: HashSet<_> = bgl().anomaly_concepts.into_iter().collect();
        assert!(b.is_subset(&bgl_set), "BGL must cover System B");
        assert!(!bgl_set.is_subset(&b));

        let c: HashSet<_> = system_c().anomaly_concepts.into_iter().collect();
        let sp: HashSet<_> = spirit().anomaly_concepts.into_iter().collect();
        assert!(c.is_subset(&sp), "Spirit must cover System C");
        assert!(!sp.is_subset(&c));
    }

    #[test]
    fn table3_scaled_counts_roughly_hold() {
        // At a small scale the generated stream should approximate the
        // Table III log count and per-window anomaly density.
        let spec = bgl();
        let scale = 0.005;
        let ds = spec.generate(scale);
        let want_logs = (spec.n_logs as f64 * scale) as usize;
        let got = ds.records.len();
        assert!(
            (got as f64) > want_logs as f64 * 0.9 && (got as f64) < want_logs as f64 * 1.3,
            "log count {got} vs target {want_logs}"
        );
    }

    #[test]
    fn anomaly_rates_ordered_like_table3() {
        // BGL is the most anomaly-dense, System B the least.
        let dense = |spec: DatasetSpec| {
            let ds = spec.generate(0.004);
            ds.num_anomalous_logs() as f64 / ds.records.len() as f64
        };
        let bgl_rate = dense(bgl());
        let b_rate = dense(system_b());
        let c_rate = dense(system_c());
        assert!(bgl_rate > c_rate, "bgl {bgl_rate} vs c {c_rate}");
        assert!(c_rate > b_rate, "c {c_rate} vs b {b_rate}");
    }

    #[test]
    fn all_specs_generate() {
        for sys in SystemId::ALL {
            let ds = spec_for(sys).generate(0.0008);
            assert!(ds.records.len() >= 100);
            assert!(
                ds.num_anomalous_logs() > 0,
                "{sys:?} generated no anomalies"
            );
        }
    }
}
