//! Parameter-value generators (IPs, ports, paths, hex codes, node names).
//!
//! Parameters are the volatile parts of a log message; Drain should mask
//! them into `<*>` so that each (system, concept) pair collapses to a small
//! number of templates.

use rand::Rng;

/// Kinds of parameter slots a message template can carry.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ParamKind {
    /// Dotted-quad IPv4 address.
    Ip,
    /// TCP/UDP port number.
    Port,
    /// Hex error/status code like `0x1f`.
    Hex,
    /// Unix-style path.
    Path,
    /// Numeric identifier.
    Id,
    /// Duration in milliseconds.
    DurationMs,
    /// Cluster node name.
    Node,
    /// Byte count.
    Bytes,
}

/// Per-system flavor for rendering node names and paths.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ParamStyle {
    /// Node-name prefix, e.g. `"R"` yields `R23-M0-N8`.
    pub node_prefix: &'static str,
    /// Path root, e.g. `"/var/log"`.
    pub path_root: &'static str,
}

/// Renders a random value for a parameter slot.
pub fn render<R: Rng>(kind: ParamKind, style: ParamStyle, rng: &mut R) -> String {
    match kind {
        ParamKind::Ip => format!(
            "{}.{}.{}.{}",
            rng.gen_range(10..240),
            rng.gen_range(0..255),
            rng.gen_range(0..255),
            rng.gen_range(1..255)
        ),
        ParamKind::Port => rng.gen_range(1024..65535).to_string(),
        ParamKind::Hex => format!("0x{:x}", rng.gen_range(1u32..0xffff)),
        ParamKind::Path => format!(
            "{}/{}/{}.dat",
            style.path_root,
            ["spool", "data", "tmp", "run"][rng.gen_range(0..4)],
            rng.gen_range(0..10_000)
        ),
        ParamKind::Id => rng.gen_range(1u32..1_000_000).to_string(),
        ParamKind::DurationMs => rng.gen_range(1u32..120_000).to_string(),
        ParamKind::Node => format!(
            "{}{}-M{}-N{}",
            style.node_prefix,
            rng.gen_range(0..64),
            rng.gen_range(0..2),
            rng.gen_range(0..16)
        ),
        ParamKind::Bytes => rng.gen_range(1u64..1 << 30).to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const STYLE: ParamStyle = ParamStyle {
        node_prefix: "R",
        path_root: "/var/log",
    };

    #[test]
    fn values_have_digits_for_drain_masking() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for kind in [
            ParamKind::Ip,
            ParamKind::Port,
            ParamKind::Hex,
            ParamKind::Path,
            ParamKind::Id,
            ParamKind::DurationMs,
            ParamKind::Node,
            ParamKind::Bytes,
        ] {
            let v = render(kind, STYLE, &mut rng);
            assert!(
                v.chars().any(|c| c.is_ascii_digit()),
                "{kind:?} value {v} has no digit — Drain would not mask it"
            );
            assert!(!v.contains(' '), "{kind:?} value {v} must be one token");
        }
    }

    #[test]
    fn ip_is_dotted_quad() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let ip = render(ParamKind::Ip, STYLE, &mut rng);
        assert_eq!(ip.split('.').count(), 4);
    }
}
