//! Deterministic replay schedules: *when* each record of a recorded
//! stream is offered to an ingest front door, as a pure function of the
//! schedule parameters (no clock, no RNG — two runs of the same
//! schedule offer records at identical offsets).
//!
//! The replay-latency harness (`benches/replay_latency.rs` in the bench
//! crate) drives the durable pipeline with these schedules at several
//! speed multipliers and publishes ingest-latency percentiles against
//! the offered load.

use std::time::Duration;

/// The arrival-process shape of a replay schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayShape {
    /// Constant inter-arrival gap: record `i` is offered at
    /// `i * mean_interarrival`.
    Steady,
    /// Arrivals clump: every record of a burst shares one offset, and
    /// bursts are spaced so the *mean* rate still matches the steady
    /// schedule — the worst realistic case for a bounded ingest queue.
    Bursty {
        /// Records per burst (0 behaves as 1, i.e. steady).
        burst: usize,
    },
    /// A load wave: the inter-arrival gap sweeps linearly from half the
    /// mean up to three halves of the mean and back, once per `period`
    /// records (a compressed day). The mean rate over a whole period
    /// matches the steady schedule.
    Diurnal {
        /// Records per wave (0 behaves as 1, i.e. steady).
        period: usize,
    },
}

impl ReplayShape {
    /// Short stable name for results tables.
    pub fn name(&self) -> &'static str {
        match self {
            ReplayShape::Steady => "steady",
            ReplayShape::Bursty { .. } => "bursty",
            ReplayShape::Diurnal { .. } => "diurnal",
        }
    }
}

/// A deterministic replay schedule: a shape plus the mean inter-arrival
/// gap of the recorded stream.
#[derive(Clone, Copy, Debug)]
pub struct ReplaySchedule {
    /// Arrival-process shape.
    pub shape: ReplayShape,
    /// Mean gap between consecutive records at recorded (1×) speed.
    pub mean_interarrival: Duration,
}

impl ReplaySchedule {
    /// Steady schedule with the given mean gap.
    pub fn steady(mean_interarrival: Duration) -> Self {
        ReplaySchedule {
            shape: ReplayShape::Steady,
            mean_interarrival,
        }
    }

    /// The offset (from replay start) at which record `i` is offered,
    /// replayed `speed`× faster than recorded. `speed` 0 is clamped
    /// to 1.
    pub fn offset(&self, i: usize, speed: u32) -> Duration {
        let mean = self.mean_interarrival.as_nanos() as u64;
        let nanos = match self.shape {
            ReplayShape::Steady => i as u64 * mean,
            ReplayShape::Bursty { burst } => {
                let burst = burst.max(1) as u64;
                // Whole bursts arrive together; burst k lands where the
                // steady schedule would put its first record.
                (i as u64 / burst) * burst * mean
            }
            ReplayShape::Diurnal { period } if period <= 1 => i as u64 * mean,
            ReplayShape::Diurnal { period } => {
                let period = period as u64;
                // Triangle-wave gaps sweeping mean/2 → 3·mean/2 → mean/2
                // over one period. Offsets anchor whole periods on the
                // *exact* per-period gap total (not `period * mean`,
                // which integer division can miss), so the sequence is
                // monotone by construction.
                let gap = |phase: u64| {
                    let tri = if 2 * phase < period {
                        2 * phase
                    } else {
                        2 * (period - phase)
                    };
                    mean / 2 + mean * tri / period
                };
                let period_total: u64 = (0..period).map(gap).sum();
                let whole = (i as u64 / period) * period_total;
                let rem: u64 = (0..i as u64 % period).map(gap).sum();
                whole + rem
            }
        };
        Duration::from_nanos(nanos / speed.max(1) as u64)
    }

    /// All `n` offsets, non-decreasing, at `speed`× recorded speed.
    pub fn offsets(&self, n: usize, speed: u32) -> Vec<Duration> {
        (0..n).map(|i| self.offset(i, speed)).collect()
    }

    /// The mean offered rate of this schedule at `speed`×, in records
    /// per second.
    pub fn offered_per_sec(&self, speed: u32) -> f64 {
        speed.max(1) as f64 / self.mean_interarrival.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MEAN: Duration = Duration::from_micros(1000);

    #[test]
    fn steady_is_linear_and_speed_divides() {
        let s = ReplaySchedule::steady(MEAN);
        assert_eq!(s.offset(0, 1), Duration::ZERO);
        assert_eq!(s.offset(7, 1), Duration::from_micros(7000));
        assert_eq!(s.offset(7, 4), Duration::from_micros(1750));
    }

    #[test]
    fn bursty_clumps_but_preserves_the_mean_rate() {
        let s = ReplaySchedule {
            shape: ReplayShape::Bursty { burst: 8 },
            mean_interarrival: MEAN,
        };
        // All of burst 0 shares offset 0; burst 1 starts where steady
        // record 8 would.
        for i in 0..8 {
            assert_eq!(s.offset(i, 1), Duration::ZERO);
        }
        assert_eq!(s.offset(8, 1), Duration::from_micros(8000));
        // Mean preserved: record k*burst lands exactly at steady time.
        assert_eq!(s.offset(64, 1), ReplaySchedule::steady(MEAN).offset(64, 1));
    }

    #[test]
    fn diurnal_wave_is_monotone_and_mean_preserving_per_period() {
        let s = ReplaySchedule {
            shape: ReplayShape::Diurnal { period: 50 },
            mean_interarrival: MEAN,
        };
        let offsets = s.offsets(200, 1);
        for w in offsets.windows(2) {
            assert!(w[0] <= w[1], "offsets must be non-decreasing");
        }
        // Whole periods cost exactly period * mean.
        assert_eq!(s.offset(100, 1), Duration::from_micros(100 * 1000));
        // Within a period the gaps actually vary.
        let gaps: Vec<Duration> = offsets.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.iter().any(|&g| g < MEAN));
        assert!(gaps.iter().any(|&g| g > MEAN));
    }

    #[test]
    fn degenerate_parameters_fall_back_to_steady() {
        let steady = ReplaySchedule::steady(MEAN);
        let b = ReplaySchedule {
            shape: ReplayShape::Bursty { burst: 0 },
            mean_interarrival: MEAN,
        };
        let d = ReplaySchedule {
            shape: ReplayShape::Diurnal { period: 0 },
            mean_interarrival: MEAN,
        };
        for i in [0usize, 3, 17] {
            assert_eq!(b.offset(i, 1), steady.offset(i, 1));
            assert_eq!(d.offset(i, 1), steady.offset(i, 1));
            assert_eq!(steady.offset(i, 0), steady.offset(i, 1), "speed 0 clamps");
        }
    }
}
