//! Per-system syntax profiles.
//!
//! A profile renders shared concepts ([`crate::ontology`]) into the
//! system's own idiom: its vocabulary (synonyms/abbreviations/casing), its
//! message structure (prefix, word order), and its parameter style. Two
//! systems logging the *same* concept therefore produce messages with very
//! different surface syntax — the Table I phenomenon the paper motivates
//! LEI with.

use std::collections::HashMap;

use rand::Rng;

use crate::ontology::{Category, Concept};
use crate::params::{render as render_param, ParamKind, ParamStyle};

/// The six systems of the paper's evaluation (§IV-A1, Table III).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SystemId {
    /// Blue Gene/L supercomputer (public group).
    Bgl,
    /// Spirit supercomputer (public group).
    Spirit,
    /// Thunderbird supercomputer (public group).
    Thunderbird,
    /// ISP production system A (CDMS group).
    SystemA,
    /// ISP production system B (CDMS group).
    SystemB,
    /// ISP production system C (CDMS group).
    SystemC,
}

impl SystemId {
    /// All systems, public group first.
    pub const ALL: [SystemId; 6] = [
        SystemId::Bgl,
        SystemId::Spirit,
        SystemId::Thunderbird,
        SystemId::SystemA,
        SystemId::SystemB,
        SystemId::SystemC,
    ];

    /// Human-readable dataset name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            SystemId::Bgl => "BGL",
            SystemId::Spirit => "Spirit",
            SystemId::Thunderbird => "Thunderbird",
            SystemId::SystemA => "System A",
            SystemId::SystemB => "System B",
            SystemId::SystemC => "System C",
        }
    }

    /// Stable small integer (used for deterministic lexicon derivation and
    /// as the system-classification label in SUFE).
    pub fn index(self) -> usize {
        match self {
            SystemId::Bgl => 0,
            SystemId::Spirit => 1,
            SystemId::Thunderbird => 2,
            SystemId::SystemA => 3,
            SystemId::SystemB => 4,
            SystemId::SystemC => 5,
        }
    }
}

/// Casing convention a system applies to its vocabulary.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Casing {
    Lower,
    Upper,
    Title,
}

fn apply_casing(tok: &str, casing: Casing) -> String {
    match casing {
        Casing::Lower => tok.to_ascii_lowercase(),
        Casing::Upper => tok.to_ascii_uppercase(),
        Casing::Title => {
            let mut c = tok.chars();
            match c.next() {
                Some(f) => f.to_ascii_uppercase().to_string() + c.as_str(),
                None => String::new(),
            }
        }
    }
}

/// Synonym pools for canonical tokens. Index 0 is the canonical spelling;
/// systems deterministically pick different entries, so vocabularies
/// diverge while remaining invertible by the LEI knowledge base.
fn synonyms(token: &str) -> &'static [&'static str] {
    match token {
        "network" => &["network", "net", "nw", "lan", "fabric"],
        "connection" => &["connection", "conn", "link", "circuit", "sock"],
        "interrupted" => &["interrupted", "refused", "dropped", "aborted", "severed"],
        "loss" => &["loss", "los", "drop", "outage", "lapse"],
        "signal" => &["signal", "sig", "carrier", "beacon", "pulse"],
        "parity" => &["parity", "prty", "ecc", "chksum", "crc"],
        "error" => &["error", "err", "fault", "failure", "exception"],
        "detected" => &["detected", "found", "observed", "caught", "flagged"],
        "read" => &["read", "rd", "load", "fetch", "readback"],
        "memory" => &["memory", "mem", "dram", "ram", "core"],
        "process" => &["process", "proc", "task", "pid", "worker"],
        "terminated" => &["terminated", "killed", "reaped", "oomkilled", "slain"],
        "disk" => &["disk", "dsk", "drive", "hdd", "volume"],
        "device" => &["device", "dev", "unit", "lun", "spindle"],
        "failed" => &["failed", "fail", "dead", "offline", "faulted"],
        "unrecoverable" => &["unrecoverable", "unrecov", "fatal", "hard", "permanent"],
        "kernel" => &["kernel", "krnl", "core-os", "sys", "nucleus"],
        "panic" => &["panic", "oops", "crash", "halt", "abend"],
        "halted" => &["halted", "stopped", "frozen", "stalled", "bricked"],
        "node" => &["node", "host", "blade", "server", "machine"],
        "repeated" => &["repeated", "multiple", "consecutive", "burst", "serial"],
        "authentication" => &["authentication", "auth", "login", "credential", "signin"],
        "failure" => &["failure", "failed", "reject", "denial", "refusal"],
        "account" => &["account", "acct", "user", "principal", "identity"],
        "replica" => &["replica", "repl", "secondary", "follower", "standby"],
        "lag" => &["lag", "delay", "backlog", "drift", "staleness"],
        "exceeded" => &["exceeded", "above", "over", "breached", "past"],
        "threshold" => &["threshold", "thresh", "limit", "watermark", "bound"],
        "primary" => &["primary", "master", "leader", "upstream", "origin"],
        "service" => &["service", "svc", "daemon", "module", "component"],
        "crashed" => &["crashed", "died", "aborted", "coredumped", "segfaulted"],
        "unexpectedly" => &[
            "unexpectedly",
            "abruptly",
            "suddenly",
            "spontaneously",
            "unplanned",
        ],
        "segmentation" => &[
            "segmentation",
            "segv",
            "sigsegv",
            "segfault",
            "accessviolation",
        ],
        "fault" => &["fault", "flt", "violation", "trap", "abort"],
        "filesystem" => &["filesystem", "fs", "vfs", "superblock", "mount"],
        "metadata" => &["metadata", "meta", "inode", "journal", "descriptor"],
        "corruption" => &["corruption", "corrupt", "damage", "inconsistency", "rot"],
        "scan" => &["scan", "fsck", "sweep", "audit", "check"],
        "temperature" => &["temperature", "temp", "thermal", "heat", "degc"],
        "critical" => &["critical", "crit", "severe", "red", "alarm"],
        "component" => &["component", "comp", "part", "sensor", "module"],
        "severe" => &["severe", "heavy", "major", "extreme", "gross"],
        "packet" => &["packet", "pkt", "frame", "datagram", "cell"],
        "observed" => &["observed", "seen", "measured", "recorded", "noted"],
        "link" => &["link", "port", "interface", "uplink", "channel"],
        "deadlock" => &["deadlock", "dlock", "lockup", "livelock", "stall"],
        "worker" => &["worker", "wrkr", "thread", "executor", "agent"],
        "threads" => &["threads", "thrds", "fibers", "routines", "contexts"],
        "heartbeat" => &["heartbeat", "hb", "keepalive", "ping", "pulsecheck"],
        "status" => &["status", "stat", "state", "condition", "health"],
        "healthy" => &["healthy", "ok", "good", "green", "nominal"],
        "periodic" => &["periodic", "regular", "interval", "cyclic", "scheduled"],
        "client" => &["client", "clnt", "caller", "requester", "consumer"],
        "request" => &["request", "req", "rpc", "query", "call"],
        "handled" => &["handled", "served", "processed", "completed", "answered"],
        "success" => &["success", "ok", "done", "succeeded", "rc=0"],
        "cache" => &["cache", "cch", "buffer", "memcache", "store"],
        "lookup" => &["lookup", "lkup", "get", "probe", "search"],
        "hit" => &["hit", "found", "present", "cached", "warm"],
        "miss" => &["miss", "absent", "cold", "notfound", "empty"],
        "fetch" => &["fetch", "ftch", "pull", "retrieve", "load"],
        "store" => &["store", "str", "backend", "origin", "database"],
        "session" => &["session", "sess", "channel", "stream", "circuit"],
        "opened" => &["opened", "open", "established", "created", "up"],
        "closed" => &["closed", "close", "torn-down", "ended", "down"],
        "peer" => &["peer", "remote", "endpoint", "neighbor", "partner"],
        "normal" => &["normal", "norm", "clean", "graceful", "expected"],
        "configuration" => &["configuration", "config", "cfg", "settings", "profile"],
        "reloaded" => &["reloaded", "reread", "refreshed", "reapplied", "rescanned"],
        "garbage" => &["garbage", "gc", "heap", "arena", "pool"],
        "collection" => &["collection", "collect", "sweep", "compaction", "reclaim"],
        "cycle" => &["cycle", "cyc", "round", "pass", "epoch"],
        "completed" => &["completed", "complete", "finished", "done", "ended"],
        "data" => &["data", "dat", "payload", "content", "blob"],
        "block" => &["block", "blk", "chunk", "extent", "segment"],
        "written" => &["written", "write", "flushed", "persisted", "committed"],
        "synchronized" => &["synchronized", "synced", "caughtup", "aligned", "converged"],
        "user" => &["user", "usr", "account", "subject", "login"],
        "authenticated" => &[
            "authenticated",
            "authed",
            "verified",
            "loggedin",
            "validated",
        ],
        "batch" => &["batch", "btch", "bulk", "queued", "offline"],
        "job" => &["job", "jb", "task", "run", "workitem"],
        "scheduled" => &["scheduled", "queued", "planned", "dispatched", "enqueued"],
        "finished" => &["finished", "fin", "done", "exited", "completed"],
        "exit" => &["exit", "rc", "retcode", "status", "code"],
        "zero" => &["zero", "ok", "clean", "success", "nominal"],
        "forwarded" => &["forwarded", "fwd", "relayed", "routed", "passed"],
        "next" => &["next", "nxt", "downstream", "onward", "subsequent"],
        "hop" => &["hop", "hp", "gateway", "router", "stage"],
        "sensor" => &["sensor", "snsr", "probe", "gauge", "monitor"],
        "range" => &["range", "rng", "band", "envelope", "window"],
        "usage" => &["usage", "usg", "utilization", "consumption", "footprint"],
        "report" => &["report", "rpt", "summary", "digest", "snapshot"],
        "started" => &["started", "start", "launched", "booted", "spawned"],
        "listening" => &["listening", "listen", "bound", "accepting", "ready"],
        "stopped" => &["stopped", "stop", "shutdown", "terminated", "exited"],
        "cleanly" => &["cleanly", "clean", "gracefully", "orderly", "normally"],
        "operator" => &["operator", "oper", "admin", "sre", "human"],
        "backup" => &["backup", "bkup", "snapshot", "archive", "dump"],
        "health" => &["health", "hlth", "liveness", "readiness", "vitals"],
        "check" => &["check", "chk", "probe", "test", "verify"],
        "probe" => &["probe", "prb", "ping", "poll", "query"],
        "passed" => &["passed", "pass", "ok", "green", "succeeded"],
        "out" => &["out", "oom", "exhausted", "depleted", "short"],
        "of" => &["of", "-", "w/", "with", "for"],
        _ => &[],
    }
}

/// A system's rendering profile.
pub struct SyntaxProfile {
    system: SystemId,
    casing: Casing,
    /// canonical token -> system surface token
    lexicon: HashMap<&'static str, String>,
    /// system surface token -> canonical token (for the LEI knowledge base)
    reverse: HashMap<String, &'static str>,
    param_style: ParamStyle,
    /// Rotation applied to the token order (word-order divergence).
    rotation: usize,
}

fn fnv(system: SystemId, token: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325 ^ (system.index() as u64).wrapping_mul(0x100000001b3);
    for b in token.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl SyntaxProfile {
    /// Builds the deterministic profile for `system` over `concepts`.
    pub fn new(system: SystemId, concepts: &[Concept]) -> Self {
        let casing = match system {
            SystemId::Bgl => Casing::Upper,
            SystemId::Spirit => Casing::Lower,
            SystemId::Thunderbird => Casing::Lower,
            SystemId::SystemA => Casing::Title,
            SystemId::SystemB => Casing::Lower,
            SystemId::SystemC => Casing::Upper,
        };
        let param_style = match system {
            SystemId::Bgl => ParamStyle {
                node_prefix: "R",
                path_root: "/bgl/ciod",
            },
            SystemId::Spirit => ParamStyle {
                node_prefix: "sn",
                path_root: "/var/spool",
            },
            SystemId::Thunderbird => ParamStyle {
                node_prefix: "tbird-",
                path_root: "/scratch",
            },
            SystemId::SystemA => ParamStyle {
                node_prefix: "cdms-a",
                path_root: "/data/a",
            },
            SystemId::SystemB => ParamStyle {
                node_prefix: "cdms-b",
                path_root: "/data/b",
            },
            SystemId::SystemC => ParamStyle {
                node_prefix: "cdms-c",
                path_root: "/data/c",
            },
        };
        let rotation = system.index() % 3;

        // Vocabulary affinity: some system pairs share much of their
        // jargon, mirroring the paper's observation that certain systems
        // are syntactically similar (Thunderbird/Spirit are sibling
        // supercomputers; System C grew out of System A's codebase). This
        // is what gives LogTransfer/MetaLog their favourable targets in
        // Tables IV/V while other pairs stay divergent (Table I).
        let affinity: Option<(SystemId, u64)> = match system {
            SystemId::Thunderbird => Some((SystemId::Spirit, 65)),
            SystemId::SystemC => Some((SystemId::SystemA, 50)),
            _ => None,
        };

        let mut lexicon = HashMap::new();
        let mut reverse: HashMap<String, &'static str> = HashMap::new();
        let mut canon_tokens: Vec<&'static str> = Vec::new();
        for c in concepts {
            for &t in c.tokens {
                if !canon_tokens.contains(&t) {
                    canon_tokens.push(t);
                }
            }
        }
        for &tok in &canon_tokens {
            let pool = synonyms(tok);
            let lexicon_system = match affinity {
                Some((donor, pct)) if fnv(system, tok) % 100 < pct => donor,
                _ => system,
            };
            let mut pick = if pool.is_empty() {
                tok.to_string()
            } else {
                pool[(fnv(lexicon_system, tok) % pool.len() as u64) as usize].to_string()
            };
            pick = apply_casing(&pick, casing);
            // Keep the surface lexicon injective so LEI can invert it:
            // on collision fall back to the canonical spelling, then to a
            // disambiguated form.
            if reverse.contains_key(&pick) {
                pick = apply_casing(tok, casing);
            }
            if reverse.contains_key(&pick) {
                pick = format!("{}_{}", pick, lexicon.len());
            }
            reverse.insert(pick.clone(), tok);
            lexicon.insert(tok, pick);
        }
        SyntaxProfile {
            system,
            casing,
            lexicon,
            reverse,
            param_style,
            rotation,
        }
    }

    /// The system this profile renders for.
    pub fn system(&self) -> SystemId {
        self.system
    }

    /// Surface form of a canonical token in this system's vocabulary.
    pub fn surface<'a>(&'a self, canonical: &'a str) -> &'a str {
        self.lexicon
            .get(canonical)
            .map(|s| s.as_str())
            .unwrap_or(canonical)
    }

    /// The system's surface → canonical mapping (consumed by the LEI
    /// knowledge base — the "language knowledge" a real LLM would bring).
    pub fn reverse_lexicon(&self) -> &HashMap<String, &'static str> {
        &self.reverse
    }

    /// The system's severity vocabulary for a concept's log level. Severity
    /// words differ per system and are an imperfect anomaly signal (see
    /// [`crate::ontology::Severity`]).
    fn severity_word(&self, concept: &Concept) -> &'static str {
        use crate::ontology::Severity::*;
        match (self.system, concept.severity) {
            (SystemId::Bgl, Error) => "FATAL",
            (SystemId::Bgl, Warn) => "WARNING",
            (SystemId::Bgl, Info) => "INFO",
            (SystemId::Spirit, Error) => "err",
            (SystemId::Spirit, Warn) => "warn",
            (SystemId::Spirit, Info) => "info",
            (SystemId::Thunderbird, Error) => "error",
            (SystemId::Thunderbird, Warn) => "warning",
            (SystemId::Thunderbird, Info) => "notice",
            (SystemId::SystemA, Error) => "ERR",
            (SystemId::SystemA, Warn) => "WRN",
            (SystemId::SystemA, Info) => "INF",
            (SystemId::SystemB, Error) => "error",
            (SystemId::SystemB, Warn) => "warn",
            (SystemId::SystemB, Info) => "info",
            (SystemId::SystemC, Error) => "SEVERE",
            (SystemId::SystemC, Warn) => "MINOR",
            (SystemId::SystemC, Info) => "ROUTINE",
        }
    }

    fn prefix(&self, concept: &Concept) -> String {
        let sev = self.severity_word(concept);
        match self.system {
            SystemId::Bgl => format!("RAS {} {}", category_tag(concept.category), sev),
            SystemId::Spirit => format!(
                "{}[{}]:",
                daemon_name(concept.category),
                sev.to_ascii_lowercase()
            ),
            SystemId::Thunderbird => {
                format!(
                    "{}-daemon {}:",
                    category_tag(concept.category).to_ascii_lowercase(),
                    sev.to_ascii_lowercase()
                )
            }
            SystemId::SystemA => format!("svcA|{}|{}|", category_tag(concept.category), sev),
            SystemId::SystemB => format!(
                "[b-{}] {}",
                daemon_name(concept.category),
                sev.to_ascii_lowercase()
            ),
            SystemId::SystemC => format!("C::{}::{}", category_tag(concept.category), sev),
        }
    }

    fn param_slots(&self, concept: &Concept) -> Vec<ParamKind> {
        // Parameter shape depends on the concept's category and, mildly,
        // on the system (number of slots).
        let base: &[ParamKind] = match concept.category {
            Category::Network => &[ParamKind::Ip, ParamKind::Port],
            Category::Memory => &[ParamKind::Bytes, ParamKind::Hex],
            Category::Storage => &[ParamKind::Path, ParamKind::Id],
            Category::Compute => &[ParamKind::Node, ParamKind::Id],
            Category::Auth => &[ParamKind::Id, ParamKind::Ip],
            Category::Replication => &[ParamKind::Node, ParamKind::DurationMs],
            Category::Service => &[ParamKind::Id, ParamKind::DurationMs],
            Category::Hardware => &[ParamKind::Node, ParamKind::Hex],
        };
        let n = 1 + (self.system.index() + concept.id.0 as usize) % base.len().max(1);
        base[..n.min(base.len())].to_vec()
    }

    /// Renders one log message for `concept`, picking one of the concept's
    /// two message variants. Within a variant the token structure is fixed
    /// — only parameter values vary — so Drain maps occurrences to one
    /// template per (system, concept, variant). Real components emit an
    /// event through several distinct log statements; two variants give
    /// that redundancy (and make single-template LEI mishaps non-fatal).
    pub fn render<R: Rng>(&self, concept: &Concept, rng: &mut R) -> String {
        let alt = rng.gen_bool(0.4);
        self.render_variant(concept, alt, rng)
    }

    /// Renders a specific message variant (see [`SyntaxProfile::render`]).
    pub fn render_variant<R: Rng>(&self, concept: &Concept, alt: bool, rng: &mut R) -> String {
        let mut msg = self.template_variant_text(concept, alt);
        for kind in self.param_slots_variant(concept, alt) {
            msg.push(' ');
            let v = render_param(kind, self.param_style, rng);
            match self.system {
                SystemId::SystemA | SystemId::SystemC => {
                    msg.push_str(&format!("{}={}", param_key(kind), v));
                }
                _ => msg.push_str(&v),
            }
        }
        msg
    }

    fn param_slots_variant(&self, concept: &Concept, alt: bool) -> Vec<ParamKind> {
        let mut slots = self.param_slots(concept);
        if alt {
            // The alternate log statement reports one more detail.
            let extra = slots.last().copied().unwrap_or(ParamKind::Id);
            slots.push(extra);
        }
        slots
    }

    /// The fixed (parameter-free) token prefix of a variant.
    fn template_variant_text(&self, concept: &Concept, alt: bool) -> String {
        let mut body: Vec<String> = concept
            .tokens
            .iter()
            .map(|t| self.surface(t).to_string())
            .collect();
        // Word-order divergence: rotate the body tokens per system; the
        // alternate statement additionally reverses them (a different log
        // statement wording for the same event).
        let rot = self.rotation % body.len().max(1);
        body.rotate_left(rot);
        if alt {
            body.reverse();
        }
        let mut msg = self.prefix(concept);
        for tok in &body {
            msg.push(' ');
            msg.push_str(tok);
        }
        msg
    }

    /// The template text Drain should (approximately) learn for a concept's
    /// primary variant: the rendered message minus parameters. Used by
    /// tests and examples.
    pub fn template_text(&self, concept: &Concept) -> String {
        self.template_variant_text(concept, false)
    }

    /// Casing label, exposed for tests/documentation.
    pub fn casing_name(&self) -> &'static str {
        match self.casing {
            Casing::Lower => "lower",
            Casing::Upper => "upper",
            Casing::Title => "title",
        }
    }
}

fn category_tag(c: Category) -> &'static str {
    match c {
        Category::Network => "NET",
        Category::Memory => "MEM",
        Category::Storage => "STO",
        Category::Compute => "CPU",
        Category::Auth => "SEC",
        Category::Replication => "REP",
        Category::Service => "APP",
        Category::Hardware => "HW",
    }
}

fn daemon_name(c: Category) -> &'static str {
    match c {
        Category::Network => "netd",
        Category::Memory => "memd",
        Category::Storage => "iod",
        Category::Compute => "sched",
        Category::Auth => "sshd",
        Category::Replication => "repld",
        Category::Service => "svcd",
        Category::Hardware => "hwmon",
    }
}

fn param_key(kind: ParamKind) -> &'static str {
    match kind {
        ParamKind::Ip => "addr",
        ParamKind::Port => "port",
        ParamKind::Hex => "code",
        ParamKind::Path => "path",
        ParamKind::Id => "id",
        ParamKind::DurationMs => "ms",
        ParamKind::Node => "node",
        ParamKind::Bytes => "bytes",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::ontology;
    use rand::SeedableRng;

    #[test]
    fn lexicons_are_injective() {
        let all = ontology();
        for sys in SystemId::ALL {
            let p = SyntaxProfile::new(sys, &all);
            let fwd: usize = all
                .iter()
                .flat_map(|c| c.tokens.iter())
                .collect::<std::collections::HashSet<_>>()
                .len();
            assert_eq!(
                p.reverse_lexicon().len(),
                fwd,
                "{sys:?} lexicon not injective"
            );
        }
    }

    #[test]
    fn same_concept_diverges_across_systems() {
        let all = ontology();
        let ni = &all[20]; // network_interruption
        assert_eq!(ni.name, "network_interruption");
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let texts: Vec<String> = SystemId::ALL
            .iter()
            .map(|&s| SyntaxProfile::new(s, &all).render(ni, &mut rng))
            .collect();
        // Pairwise token overlap must be low — except the two deliberately
        // affine pairs (Thunderbird↔Spirit, SystemC↔SystemA).
        let affine = |i: usize, j: usize| (i == 1 && j == 2) || (i == 3 && j == 5);
        for i in 0..texts.len() {
            for j in (i + 1)..texts.len() {
                if affine(i, j) {
                    continue;
                }
                let a: std::collections::HashSet<&str> = texts[i].split(' ').collect();
                let b: std::collections::HashSet<&str> = texts[j].split(' ').collect();
                let inter = a.intersection(&b).count();
                let union = a.union(&b).count();
                let jaccard = inter as f64 / union as f64;
                assert!(
                    jaccard < 0.5,
                    "systems {i}/{j} too similar ({jaccard:.2}): {:?} vs {:?}",
                    texts[i],
                    texts[j]
                );
            }
        }
    }

    #[test]
    fn affine_pairs_share_more_vocabulary() {
        // Case-insensitive body-token overlap (embeddings lowercase
        // everything, so casing differences do not matter downstream).
        let all = ontology();
        let body =
            |sys: SystemId, c: &crate::ontology::Concept| -> std::collections::HashSet<String> {
                let p = SyntaxProfile::new(sys, &all);
                c.tokens
                    .iter()
                    .map(|t| p.surface(t).to_ascii_lowercase())
                    .collect()
            };
        let overlap = |a: SystemId, b: SystemId| -> f64 {
            let mut inter = 0usize;
            let mut total = 0usize;
            for c in &all {
                let sa = body(a, c);
                let sb = body(b, c);
                inter += sa.intersection(&sb).count();
                total += sa.len();
            }
            inter as f64 / total as f64
        };
        let tb_spirit = overlap(SystemId::Thunderbird, SystemId::Spirit);
        let bgl_spirit = overlap(SystemId::Bgl, SystemId::Spirit);
        assert!(
            tb_spirit > bgl_spirit + 0.2,
            "affinity should raise Tbird/Spirit overlap: {tb_spirit:.2} vs {bgl_spirit:.2}"
        );
        let c_a = overlap(SystemId::SystemC, SystemId::SystemA);
        let c_b = overlap(SystemId::SystemC, SystemId::SystemB);
        assert!(c_a > c_b + 0.1, "C/A affinity: {c_a:.2} vs {c_b:.2}");
    }

    #[test]
    fn rendering_is_template_stable_per_variant() {
        // Same (system, concept, variant) must differ only in parameters.
        let all = ontology();
        let p = SyntaxProfile::new(SystemId::Spirit, &all);
        let c = &all[23]; // disk_failure
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for alt in [false, true] {
            let a = p.render_variant(c, alt, &mut rng);
            let b = p.render_variant(c, alt, &mut rng);
            let ta: Vec<&str> = a.split(' ').collect();
            let tb: Vec<&str> = b.split(' ').collect();
            assert_eq!(ta.len(), tb.len());
            for (x, y) in ta.iter().zip(&tb) {
                if x != y {
                    assert!(
                        x.chars().any(|ch| ch.is_ascii_digit()),
                        "non-parameter token differs: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn variants_share_vocabulary_but_differ_in_structure() {
        let all = ontology();
        let p = SyntaxProfile::new(SystemId::Bgl, &all);
        let c = &all[27]; // service_crash
        let t0 = p.template_text(c);
        let t1 = p.template_variant_text(c, true);
        assert_ne!(t0, t1, "variants must produce distinct Drain templates");
        let set0: std::collections::HashSet<&str> = t0.split(' ').collect();
        let set1: std::collections::HashSet<&str> = t1.split(' ').collect();
        assert_eq!(
            set0, set1,
            "variants carry the same surface vocabulary for LEI"
        );
    }

    #[test]
    fn surface_roundtrips_through_reverse_lexicon() {
        let all = ontology();
        let p = SyntaxProfile::new(SystemId::SystemC, &all);
        for c in &all {
            for &t in c.tokens {
                let s = p.surface(t);
                assert_eq!(p.reverse_lexicon().get(s).copied(), Some(t));
            }
        }
    }

    #[test]
    fn anomalous_prefix_carries_severity() {
        let all = ontology();
        let p = SyntaxProfile::new(SystemId::Bgl, &all);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let anom = p.render(&all[24], &mut rng); // kernel_panic
        let norm = p.render(&all[0], &mut rng); // heartbeat_ok
        assert!(anom.contains("FATAL"));
        assert!(norm.contains("INFO"));
    }
}
