//! The shared anomaly-concept ontology.
//!
//! The paper's key observation (Table I) is that *the same anomalous event*
//! surfaces with radically different syntax in different systems. The
//! generator reproduces that structure by drawing every system's logs from
//! one shared set of **concepts** — each with a canonical, system-neutral
//! description — and rendering them through per-system syntax profiles
//! ([`crate::profile`]).

/// Identifier of a concept in [`ontology`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConceptId(pub u16);

/// Broad functional category of a concept.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Networking and connectivity.
    Network,
    /// Memory and caches.
    Memory,
    /// Disks and filesystems.
    Storage,
    /// CPU/kernel/scheduler.
    Compute,
    /// Authentication and access control.
    Auth,
    /// Replication and distributed state.
    Replication,
    /// Service lifecycle.
    Service,
    /// Hardware health.
    Hardware,
}

/// Log level a concept is emitted at.
///
/// Severity is deliberately an *imperfect* anomaly signal, mirroring the
/// paper's external-threat discussion (§IV-E1: "logs with negative
/// semantics, such as frequent login failures, are not considered
/// anomalies"): some normal concepts log at error level and some anomalies
/// only at warning level, so no model can shortcut on severity alone.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Severity {
    /// Routine information.
    Info,
    /// Degraded but expected condition.
    Warn,
    /// Error-level message.
    Error,
}

/// A system-neutral event concept.
#[derive(Clone, Debug)]
pub struct Concept {
    /// Identifier (index into [`ontology`]).
    pub id: ConceptId,
    /// Short snake_case name.
    pub name: &'static str,
    /// Functional category.
    pub category: Category,
    /// Whether occurrences of this concept are anomalous.
    pub anomalous: bool,
    /// Log level the concept is emitted at.
    pub severity: Severity,
    /// Canonical interpretation — what an ideal LLM would say the event
    /// means, in standardized syntax (the LEI target).
    pub interpretation: &'static str,
    /// Canonical content tokens; syntax profiles map these into
    /// system-specific vocabulary.
    pub tokens: &'static [&'static str],
}

macro_rules! concepts {
    ($(($name:ident, $cat:ident, $anom:expr, $sev:ident, $interp:expr, [$($tok:expr),* $(,)?])),* $(,)?) => {{
        let mut v = vec![$(Concept {
            id: ConceptId(0), // placeholder; assigned from position below
            name: stringify!($name),
            category: Category::$cat,
            anomalous: $anom,
            severity: Severity::$sev,
            interpretation: $interp,
            tokens: &[$($tok),*],
        }),*];
        for (i, c) in v.iter_mut().enumerate() {
            c.id = ConceptId(i as u16);
        }
        v
    }};
}

/// Builds the full shared ontology (22 normal + 12 anomalous concepts).
pub fn ontology() -> Vec<Concept> {
    concepts![
        // ------------------------- normal operations -------------------------
        (
            heartbeat_ok,
            Service,
            false,
            Info,
            "periodic heartbeat reported healthy status",
            ["heartbeat", "status", "healthy", "periodic"]
        ),
        (
            request_handled,
            Service,
            false,
            Info,
            "client request handled successfully",
            ["client", "request", "handled", "success"]
        ),
        (
            cache_hit,
            Memory,
            false,
            Info,
            "cache lookup hit for requested key",
            ["cache", "lookup", "hit", "key"]
        ),
        (
            cache_miss,
            Memory,
            false,
            Warn,
            "cache lookup missed and fetched from backing store",
            ["cache", "lookup", "miss", "fetch", "store"]
        ),
        (
            session_open,
            Network,
            false,
            Info,
            "network session opened with peer",
            ["session", "opened", "peer", "network"]
        ),
        (
            session_close,
            Network,
            false,
            Info,
            "network session closed normally",
            ["session", "closed", "normal", "network"]
        ),
        (
            config_reload,
            Service,
            false,
            Info,
            "configuration reloaded successfully",
            ["configuration", "reloaded", "success"]
        ),
        (
            gc_cycle,
            Memory,
            false,
            Info,
            "garbage collection cycle completed",
            ["garbage", "collection", "cycle", "completed"]
        ),
        (
            disk_write_ok,
            Storage,
            false,
            Info,
            "data block written to disk successfully",
            ["data", "block", "written", "disk", "success"]
        ),
        (
            replication_sync,
            Replication,
            false,
            Info,
            "replica synchronized with primary",
            ["replica", "synchronized", "primary"]
        ),
        (
            auth_success,
            Auth,
            false,
            Info,
            "user authenticated successfully",
            ["user", "authenticated", "success"]
        ),
        (
            job_scheduled,
            Compute,
            false,
            Info,
            "batch job scheduled on node",
            ["batch", "job", "scheduled", "node"]
        ),
        (
            job_finished,
            Compute,
            false,
            Info,
            "batch job finished with exit status zero",
            ["batch", "job", "finished", "exit", "zero"]
        ),
        (
            packet_forwarded,
            Network,
            false,
            Info,
            "packet forwarded to next hop",
            ["packet", "forwarded", "next", "hop"]
        ),
        (
            thermal_normal,
            Hardware,
            false,
            Info,
            "temperature sensors within normal range",
            ["temperature", "sensor", "normal", "range"]
        ),
        (
            memory_usage_report,
            Memory,
            false,
            Info,
            "periodic memory usage report emitted",
            ["memory", "usage", "report", "periodic"]
        ),
        (
            service_start,
            Service,
            false,
            Info,
            "service started and listening",
            ["service", "started", "listening"]
        ),
        (
            service_stop,
            Service,
            false,
            Info,
            "service stopped cleanly by operator",
            ["service", "stopped", "cleanly", "operator"]
        ),
        (
            backup_complete,
            Storage,
            false,
            Info,
            "scheduled backup completed successfully",
            ["backup", "completed", "scheduled", "success"]
        ),
        (
            healthcheck_pass,
            Service,
            false,
            Info,
            "health check probe passed",
            ["health", "check", "probe", "passed"]
        ),
        // --------------------------- anomalies -------------------------------
        (
            network_interruption,
            Network,
            true,
            Error,
            "network connection interrupted due to loss of signal",
            ["network", "connection", "interrupted", "loss", "signal"]
        ),
        (
            parity_error,
            Hardware,
            true,
            Error,
            "memory parity error detected on read",
            ["parity", "error", "detected", "read", "memory"]
        ),
        (
            memory_oom,
            Memory,
            true,
            Error,
            "process terminated after out of memory condition",
            ["process", "terminated", "out", "of", "memory"]
        ),
        (
            disk_failure,
            Storage,
            true,
            Error,
            "disk device failed with unrecoverable input output error",
            ["disk", "device", "failed", "unrecoverable", "error"]
        ),
        (
            kernel_panic,
            Compute,
            true,
            Error,
            "kernel panic halted the node",
            ["kernel", "panic", "halted", "node"]
        ),
        (
            auth_failure_burst,
            Auth,
            true,
            Error,
            "repeated authentication failures detected for account",
            ["repeated", "authentication", "failure", "account"]
        ),
        (
            replication_lag,
            Replication,
            true,
            Warn,
            "replica lag exceeded threshold behind primary",
            ["replica", "lag", "exceeded", "threshold", "primary"]
        ),
        (
            service_crash,
            Service,
            true,
            Error,
            "service crashed unexpectedly with segmentation fault",
            [
                "service",
                "crashed",
                "unexpectedly",
                "segmentation",
                "fault"
            ]
        ),
        (
            filesystem_corruption,
            Storage,
            true,
            Error,
            "filesystem metadata corruption detected during scan",
            ["filesystem", "metadata", "corruption", "detected", "scan"]
        ),
        (
            thermal_overheat,
            Hardware,
            true,
            Error,
            "temperature exceeded critical threshold on component",
            [
                "temperature",
                "exceeded",
                "critical",
                "threshold",
                "component"
            ]
        ),
        (
            packet_loss,
            Network,
            true,
            Warn,
            "severe packet loss observed on link",
            ["severe", "packet", "loss", "observed", "link"]
        ),
        (
            deadlock_detected,
            Compute,
            true,
            Error,
            "deadlock detected between worker threads",
            ["deadlock", "detected", "worker", "threads"]
        ),
        // Normal concepts that log at error level (imperfect severity signal,
        // per the paper's external-threat analysis).
        (
            login_retry,
            Auth,
            false,
            Error,
            "client login attempt failed and will be retried",
            ["client", "login", "attempt", "failed", "retried"]
        ),
        (
            transient_timeout,
            Service,
            false,
            Error,
            "transient request timeout recovered after retry",
            ["transient", "request", "timeout", "recovered", "retry"]
        ),
    ]
}

/// Looks a concept up by name.
pub fn by_name(all: &[Concept], name: &str) -> ConceptId {
    all.iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("unknown concept {name}"))
        .id
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ontology_has_normals_and_anomalies() {
        let all = ontology();
        let anomalous = all.iter().filter(|c| c.anomalous).count();
        let normal = all.len() - anomalous;
        assert_eq!(anomalous, 12);
        assert_eq!(normal, 22);
    }

    #[test]
    fn ids_are_indices() {
        let all = ontology();
        for (i, c) in all.iter().enumerate() {
            assert_eq!(c.id.0 as usize, i);
        }
    }

    #[test]
    fn names_are_unique() {
        let all = ontology();
        let mut names: Vec<_> = all.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn every_concept_has_tokens_and_interpretation() {
        for c in ontology() {
            assert!(!c.tokens.is_empty(), "{} has no tokens", c.name);
            assert!(c.interpretation.split_whitespace().count() >= 3);
        }
    }

    #[test]
    fn by_name_finds_table1_events() {
        let all = ontology();
        // The two anomalous events of the paper's Table I.
        let ni = by_name(&all, "network_interruption");
        let pe = by_name(&all, "parity_error");
        assert!(all[ni.0 as usize].anomalous);
        assert!(all[pe.0 as usize].anomalous);
    }
}
