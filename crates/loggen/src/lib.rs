//! # logsynergy-loggen
//!
//! Synthetic multi-system log corpus generator — the stand-in for the
//! paper's six datasets (BGL, Spirit, Thunderbird, and ISP Systems A/B/C;
//! Table III). A shared anomaly-concept ontology is rendered through
//! per-system syntax profiles, reproducing the paper's central phenomenon:
//! the same anomalous event appears with radically different syntax in
//! different systems (Table I), while anomaly *semantics* are shared and
//! therefore transferable.

#![warn(missing_docs)]

pub mod corpus;
pub mod datasets;
pub mod ontology;
pub mod params;
pub mod profile;
pub mod replay;

pub use corpus::{concept, concept_partition, DatasetSpec, LogDataset, LogRecord};
pub use ontology::{by_name, ontology, Category, Concept, ConceptId};
pub use profile::{SyntaxProfile, SystemId};
pub use replay::{ReplaySchedule, ReplayShape};
