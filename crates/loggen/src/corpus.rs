//! Log-stream synthesis: session model, anomaly bursts, and dataset specs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ontology::{ontology, Concept, ConceptId};
use crate::profile::{SyntaxProfile, SystemId};

/// One generated log line with ground truth attached.
///
/// Ground-truth fields (`concept`, `anomalous`) are for labels and test
/// oracles only; models see just `message` (and operators' labels, per the
/// paper's §VI-B1 labeling process).
#[derive(Clone, Debug)]
pub struct LogRecord {
    /// Unix timestamp (seconds).
    pub timestamp: u64,
    /// The raw log message.
    pub message: String,
    /// Concept that produced the message.
    pub concept: ConceptId,
    /// Whether this log is anomalous.
    pub anomalous: bool,
}

/// A generated dataset for one system.
pub struct LogDataset {
    /// System the logs came from.
    pub system: SystemId,
    /// Log records in stream order.
    pub records: Vec<LogRecord>,
}

impl LogDataset {
    /// Messages in stream order.
    pub fn messages(&self) -> impl Iterator<Item = &str> {
        self.records.iter().map(|r| r.message.as_str())
    }

    /// Per-log anomaly labels in stream order.
    pub fn labels(&self) -> Vec<bool> {
        self.records.iter().map(|r| r.anomalous).collect()
    }

    /// Number of anomalous log lines.
    pub fn num_anomalous_logs(&self) -> usize {
        self.records.iter().filter(|r| r.anomalous).count()
    }
}

/// Specification of a dataset to synthesize. Counts are at *paper scale*
/// (Table III); [`DatasetSpec::generate`] takes a scale factor.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// System whose syntax profile renders the logs.
    pub system: SystemId,
    /// Total log lines at scale 1.0 (Table III "# of logs").
    pub n_logs: usize,
    /// Target anomalous *sequences* at scale 1.0 (Table III "# of anomalies",
    /// under the paper's window length 10 / step 5).
    pub target_anomalous_sequences: usize,
    /// Normal concepts this system emits (subset of the ontology).
    pub normal_concepts: Vec<ConceptId>,
    /// Per-normal-concept onset fractions (usually 0.0). A late onset
    /// models a *new workload* appearing after the detection model was
    /// trained — normal patterns absent from the target's training slice
    /// that single-system methods false-positive on, while cross-system
    /// transfer can recognize them from the mature sources.
    pub normal_onsets: Vec<f64>,
    /// Anomaly concepts this system can exhibit.
    pub anomaly_concepts: Vec<ConceptId>,
    /// Per-anomaly-concept onset: fraction of the stream before which the
    /// concept never fires. Later onsets land concepts in the *test* region
    /// of the paper's continuous split, exercising transfer.
    pub anomaly_onsets: Vec<f64>,
    /// Generation seed (per-system, fixed for reproducibility).
    pub seed: u64,
}

/// Window geometry assumed when converting a sequence-anomaly target into a
/// number of log-level bursts (length 10, step 5 — the paper's setting).
const WINDOW_LEN: f64 = 10.0;
const WINDOW_STEP: f64 = 5.0;
/// Mean anomaly-burst length in log lines.
const MEAN_BURST: f64 = 4.0;

impl DatasetSpec {
    /// Generates the dataset at `scale` (1.0 = paper scale).
    pub fn generate(&self, scale: f64) -> LogDataset {
        self.generate_with(scale, 1.0)
    }

    /// Generates at `scale` with the anomaly-burst count multiplied by
    /// `anomaly_boost`. Scaling a stream down preserves the anomaly *rate*
    /// but shrinks absolute anomaly counts below what a model can learn
    /// from (the paper's smallest source still yields hundreds of anomalous
    /// training sequences at n_s = 50 000). CPU-scale experiments therefore
    /// boost burst density uniformly across datasets, preserving the
    /// *relative* rates of Table III. Boost is capped so anomalous logs stay
    /// a minority of the stream.
    pub fn generate_with(&self, scale: f64, anomaly_boost: f64) -> LogDataset {
        self.generate_inner(scale, anomaly_boost, 1.0)
    }

    /// Generates with session-structured normal traffic: each normal
    /// concept is emitted in runs of geometric mean length `mean_run`
    /// instead of i.i.d. draws. Real services log in repeating
    /// procedure-shaped stretches — which is what makes the deployment
    /// pipeline's pattern library effective. The i.i.d. default is kept
    /// for the calibrated paper experiments.
    pub fn generate_sessions(&self, scale: f64, anomaly_boost: f64, mean_run: f64) -> LogDataset {
        assert!(mean_run >= 1.0, "mean_run must be >= 1");
        self.generate_inner(scale, anomaly_boost, mean_run)
    }

    fn generate_inner(&self, scale: f64, anomaly_boost: f64, mean_run: f64) -> LogDataset {
        assert!(scale > 0.0 && scale <= 1.0, "scale {scale} out of (0,1]");
        assert!(anomaly_boost >= 1.0, "anomaly_boost must be >= 1");
        assert_eq!(
            self.anomaly_concepts.len(),
            self.anomaly_onsets.len(),
            "one onset per anomaly concept"
        );
        assert_eq!(
            self.normal_concepts.len(),
            self.normal_onsets.len(),
            "one onset per normal concept"
        );
        let all = ontology();
        let profile = SyntaxProfile::new(self.system, &all);
        let mut rng = StdRng::seed_from_u64(self.seed);

        let n = ((self.n_logs as f64 * scale) as usize).max(100);
        // Each burst of mean length L makes ~ (L + WINDOW_LEN - 1) / STEP
        // windows anomalous; invert to get the burst count.
        let windows_per_burst = (MEAN_BURST + WINDOW_LEN - 1.0) / WINDOW_STEP;
        let base_bursts =
            (self.target_anomalous_sequences as f64 * scale / windows_per_burst).max(1.0);
        // Cap: the boosted anomalous-*sequence* rate stays under ~18%, so
        // dense datasets (BGL) are boosted less than sparse ones and the
        // Table III density ordering survives. The cap never cuts below
        // the unboosted base count.
        let windows_per_log = 1.0 / WINDOW_STEP;
        let max_bursts = (0.18 * n as f64 * windows_per_log / windows_per_burst).max(base_bursts);
        // Floor: tiny scaled runs still need enough anomalies for metrics
        // to be meaningful (Table III's sparsest systems would otherwise
        // yield single-digit anomalous sequences). The floor is far below
        // the cap, so the relative density ordering of Table III survives.
        let min_bursts = if anomaly_boost > 1.0 { 40.0 } else { 1.0 };
        let n_bursts = (base_bursts * anomaly_boost)
            .max(min_bursts)
            .min(max_bursts)
            .round() as usize;

        // Burst start positions: evenly spaced with jitter, each assigned a
        // concept admissible at that stream position (onset respected).
        let mut bursts: Vec<(usize, ConceptId, usize)> = Vec::with_capacity(n_bursts);
        for b in 0..n_bursts {
            let base = (b as f64 + 0.5) / n_bursts as f64;
            let jitter = (rng.gen::<f64>() - 0.5) * 0.8 / n_bursts as f64;
            let frac = (base + jitter).clamp(0.0, 0.999);
            let pos = (frac * n as f64) as usize;
            // Weight admissible concepts inversely to their availability
            // window so every concept gets a comparable share of bursts
            // over the whole stream despite staggered onsets.
            let admissible: Vec<(ConceptId, f64)> = self
                .anomaly_concepts
                .iter()
                .zip(&self.anomaly_onsets)
                .filter(|(_, &onset)| frac >= onset)
                .map(|(&c, &onset)| (c, 1.0 / (1.0 - onset).max(0.05)))
                .collect();
            let concept = if admissible.is_empty() {
                self.anomaly_concepts[0]
            } else {
                let total: f64 = admissible.iter().map(|(_, w)| w).sum();
                let mut x = rng.gen::<f64>() * total;
                let mut pick = admissible[0].0;
                for &(c, w) in &admissible {
                    pick = c;
                    if x < w {
                        break;
                    }
                    x -= w;
                }
                pick
            };
            let len = 2 + rng.gen_range(0..5); // 2..=6, mean 4
            bursts.push((pos, concept, len));
        }
        bursts.sort_by_key(|&(p, _, _)| p);

        // Zipf-ish weights over the system's normal concepts, rotated per
        // system so frequency profiles differ (system-specific signal for
        // SUFE to disentangle).
        let k = self.normal_concepts.len();
        assert!(k > 0, "need at least one normal concept");
        let rot = self.system.index() % k;
        let weights: Vec<f64> = (0..k).map(|i| 1.0 / ((i + rot) % k + 1) as f64).collect();

        let mut records = Vec::with_capacity(n + n_bursts * 4);
        let mut ts = 1_700_000_000u64;
        let mut burst_iter = bursts.into_iter().peekable();
        let mut i = 0usize;
        // Session mode: index of the normal concept currently being run.
        let mut current_run: Option<usize> = None;
        while i < n {
            if let Some(&(pos, concept, len)) = burst_iter.peek() {
                if pos <= i {
                    burst_iter.next();
                    let c = &all[concept.0 as usize];
                    for _ in 0..len {
                        ts += rng.gen_range(0..2);
                        records.push(LogRecord {
                            timestamp: ts,
                            message: profile.render(c, &mut rng),
                            concept,
                            anomalous: true,
                        });
                    }
                    continue;
                }
            }
            // Sample a normal concept from the weighted distribution,
            // restricted to concepts whose onset has passed. In session
            // mode, keep emitting the current concept with probability
            // 1 - 1/mean_run (a geometric run).
            let frac = i as f64 / n as f64;
            let continue_run =
                mean_run > 1.0 && current_run.is_some() && rng.gen::<f64>() < 1.0 - 1.0 / mean_run;
            let pick = if continue_run {
                current_run.unwrap()
            } else {
                let wsum: f64 = weights
                    .iter()
                    .zip(&self.normal_onsets)
                    .filter(|(_, &o)| frac >= o)
                    .map(|(w, _)| w)
                    .sum();
                let mut x = rng.gen::<f64>() * wsum;
                let mut pick = 0usize;
                for (j, w) in weights.iter().enumerate() {
                    if frac < self.normal_onsets[j] {
                        continue;
                    }
                    pick = j;
                    if x < *w {
                        break;
                    }
                    x -= w;
                }
                pick
            };
            current_run = Some(pick);
            let cid = self.normal_concepts[pick];
            let c = &all[cid.0 as usize];
            ts += rng.gen_range(1..4);
            records.push(LogRecord {
                timestamp: ts,
                message: profile.render(c, &mut rng),
                concept: cid,
                anomalous: false,
            });
            i += 1;
        }
        LogDataset {
            system: self.system,
            records,
        }
    }
}

/// Convenience: the concepts of the ontology partitioned by anomaly flag.
pub fn concept_partition() -> (Vec<ConceptId>, Vec<ConceptId>) {
    let all = ontology();
    let normal = all.iter().filter(|c| !c.anomalous).map(|c| c.id).collect();
    let anomalous = all.iter().filter(|c| c.anomalous).map(|c| c.id).collect();
    (normal, anomalous)
}

/// Looks up a concept's metadata.
pub fn concept(id: ConceptId) -> Concept {
    ontology()[id.0 as usize].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn generation_is_deterministic() {
        let spec = datasets::bgl();
        let a = spec.generate(0.002);
        let b = spec.generate(0.002);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.message, y.message);
            assert_eq!(x.anomalous, y.anomalous);
        }
    }

    #[test]
    fn anomaly_labels_match_concepts() {
        let ds = datasets::spirit().generate(0.001);
        let all = ontology();
        for r in &ds.records {
            assert_eq!(r.anomalous, all[r.concept.0 as usize].anomalous);
        }
    }

    #[test]
    fn session_mode_increases_autocorrelation() {
        let spec = datasets::system_b();
        let iid = spec.generate(0.004);
        let sess = spec.generate_sessions(0.004, 1.0, 4.0);
        let repeat_rate = |ds: &LogDataset| {
            let reps = ds
                .records
                .windows(2)
                .filter(|w| w[0].concept == w[1].concept)
                .count();
            reps as f64 / (ds.records.len() - 1) as f64
        };
        let r_iid = repeat_rate(&iid);
        let r_sess = repeat_rate(&sess);
        assert!(
            r_sess > r_iid + 0.3,
            "session runs must raise concept autocorrelation: {r_iid:.2} -> {r_sess:.2}"
        );
        // Marginal anomaly structure is untouched.
        assert!(sess.num_anomalous_logs() > 0);
    }

    #[test]
    fn session_mode_with_unit_run_matches_default() {
        let spec = datasets::system_c();
        let a = spec.generate_with(0.002, 2.0);
        let b = spec.generate_sessions(0.002, 2.0, 1.0);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(
                x.message, y.message,
                "mean_run = 1 must be byte-identical to default"
            );
        }
    }

    #[test]
    fn timestamps_are_monotone() {
        let ds = datasets::system_a().generate(0.002);
        for w in ds.records.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    #[test]
    fn early_stream_respects_onsets() {
        let spec = datasets::bgl();
        let ds = spec.generate(0.01);
        let n = ds.records.len();
        // A concept with onset o must not fire before ~o*n (small slack for
        // burst length spillover).
        for (cid, &onset) in spec.anomaly_concepts.iter().zip(&spec.anomaly_onsets) {
            if onset == 0.0 {
                continue;
            }
            let first = ds.records.iter().position(|r| r.concept == *cid);
            if let Some(p) = first {
                assert!(
                    (p as f64) >= onset * n as f64 * 0.8,
                    "concept {cid:?} fired at {p}/{n}, onset {onset}"
                );
            }
        }
    }
}
