//! Online detection stage: sliding-window assembly, pattern-library fast
//! path, model slow path, and report generation.

use logsynergy::data::SeqSample;
use logsynergy::detector::{Detector, THRESHOLD};
use logsynergy::model::LogSynergyModel;

use crate::patterns::{PatternLibrary, Verdict};
use crate::record::StructuredLog;
use crate::report::Report;
use crate::vectorizer::EventVectorizer;

/// Anything that can score a window of event ids against an embedding
/// table (the offline-trained model, or a stub in tests).
pub trait SequenceScorer: Send {
    /// Anomaly probability in `[0, 1]`.
    fn score(&self, events: &[u32], table: &[Vec<f32>]) -> f32;
}

/// The production scorer: a trained LogSynergy model.
pub struct ModelScorer {
    model: LogSynergyModel,
}

impl ModelScorer {
    /// Wraps a trained model.
    pub fn new(model: LogSynergyModel) -> Self {
        ModelScorer { model }
    }
}

impl SequenceScorer for ModelScorer {
    fn score(&self, events: &[u32], table: &[Vec<f32>]) -> f32 {
        let sample = SeqSample {
            events: events.to_vec(),
            label: false,
        };
        Detector::new(&self.model).scores(std::slice::from_ref(&sample), table)[0]
    }
}

/// Per-stream window assembler + two-tier detector.
pub struct OnlineDetector<S: SequenceScorer> {
    vectorizer: EventVectorizer,
    scorer: S,
    library: PatternLibrary,
    window_len: usize,
    step: usize,
    buffer: Vec<(u32, StructuredLog)>,
    since_last_window: usize,
    /// Sequences scored by the model (slow path).
    pub model_calls: u64,
    /// Sequences answered from the pattern library (fast path).
    pub fast_hits: u64,
}

impl<S: SequenceScorer> OnlineDetector<S> {
    /// Builds a detector with the paper's window geometry (10/5).
    pub fn new(vectorizer: EventVectorizer, scorer: S) -> Self {
        OnlineDetector {
            vectorizer,
            scorer,
            library: PatternLibrary::new(),
            window_len: 10,
            step: 5,
            buffer: Vec::new(),
            since_last_window: 0,
            model_calls: 0,
            fast_hits: 0,
        }
    }

    /// Feeds one structured log; returns a report when a freshly completed
    /// window is anomalous.
    pub fn ingest(&mut self, log: StructuredLog) -> Option<Report> {
        let event = self.vectorizer.ingest(&log.message);
        self.buffer.push((event, log));
        if self.buffer.len() > self.window_len {
            self.buffer.remove(0);
        }
        self.since_last_window += 1;
        if self.buffer.len() < self.window_len || self.since_last_window < self.step {
            return None;
        }
        self.since_last_window = 0;

        let events: Vec<u32> = self.buffer.iter().map(|(e, _)| *e).collect();
        let verdict = match self.library.lookup(&events) {
            Some(v) => {
                self.fast_hits += 1;
                v
            }
            None => {
                self.model_calls += 1;
                let p = self.scorer.score(&events, self.vectorizer.table());
                let anomalous = p > THRESHOLD;
                // Leave-one-out saliency for anomalous windows: the event
                // whose removal drops the score the most headlines the
                // alert. Runs only on the rare anomalous+new patterns.
                let culprit = if anomalous {
                    let mut distinct: Vec<u32> = events.clone();
                    distinct.sort_unstable();
                    distinct.dedup();
                    distinct
                        .into_iter()
                        .map(|id| {
                            let reduced: Vec<u32> =
                                events.iter().copied().filter(|&e| e != id).collect();
                            let p_without = if reduced.is_empty() {
                                0.0
                            } else {
                                self.scorer.score(&reduced, self.vectorizer.table())
                            };
                            (id, p - p_without)
                        })
                        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                        .map(|(id, _)| id)
                } else {
                    None
                };
                let v = Verdict {
                    probability: p,
                    anomalous,
                    culprit,
                };
                self.library.insert(&events, v);
                v
            }
        };
        if !verdict.anomalous {
            return None;
        }
        let first = &self.buffer[0].1;
        let last = &self.buffer[self.buffer.len() - 1].1;
        Some(Report {
            system: first.system.clone(),
            probability: verdict.probability,
            start_timestamp: first.timestamp,
            end_timestamp: last.timestamp,
            first_seq_no: first.seq_no,
            messages: self.buffer.iter().map(|(_, l)| l.message.clone()).collect(),
            interpretations: events
                .iter()
                .map(|&e| self.vectorizer.text(e).to_string())
                .collect(),
            culprit: verdict
                .culprit
                .map(|id| self.vectorizer.text(id).to_string()),
        })
    }

    /// The underlying vectorizer (template statistics).
    pub fn vectorizer(&self) -> &EventVectorizer {
        &self.vectorizer
    }

    /// Pattern-library size.
    pub fn library_len(&self) -> usize {
        self.library.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logsynergy_lei::LeiConfig;
    use logsynergy_loggen::SystemId;

    /// Flags windows containing the token "dead".
    struct StubScorer;
    impl SequenceScorer for StubScorer {
        fn score(&self, events: &[u32], table: &[Vec<f32>]) -> f32 {
            let _ = table;
            if events.iter().any(|&e| e >= 1) {
                0.9
            } else {
                0.1
            }
        }
    }

    fn slog(i: u64, msg: &str) -> StructuredLog {
        StructuredLog {
            system: "b".into(),
            timestamp: i,
            message: msg.into(),
            seq_no: i,
        }
    }

    #[test]
    fn windows_fire_every_step_and_reports_carry_interpretations() {
        let v = EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());
        let mut det = OnlineDetector::new(v, StubScorer);
        let mut reports = Vec::new();
        for i in 0..30 {
            let msg = if i == 17 {
                "drive volume dead offline"
            } else {
                "session open remote peer"
            };
            if let Some(r) = det.ingest(slog(i, msg)) {
                reports.push(r);
            }
        }
        assert!(
            !reports.is_empty(),
            "the anomalous log must produce a report"
        );
        assert!(det.model_calls > 0);
        for r in &reports {
            assert_eq!(r.messages.len(), 10);
            assert_eq!(r.interpretations.len(), 10);
            assert!(r.probability > THRESHOLD);
        }
    }

    #[test]
    fn pattern_library_serves_repeats() {
        let v = EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());
        let mut det = OnlineDetector::new(v, StubScorer);
        for i in 0..200 {
            det.ingest(slog(i, "steady state heartbeat ping"));
        }
        assert!(
            det.fast_hits > 0,
            "identical windows must hit the fast path"
        );
        assert!(
            det.model_calls < 5,
            "steady-state stream should rarely reach the model: {}",
            det.model_calls
        );
        assert_eq!(det.library_len() as u64, det.model_calls);
    }
}
