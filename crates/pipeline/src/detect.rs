//! Online detection stage: sliding-window assembly, pattern-library fast
//! path, LRU score cache, micro-batched model slow path, and report
//! generation.
//!
//! [`OnlineDetector::ingest_batch`] is the serving hot path: it answers
//! pattern-library hits inline, serves exact-window repeats from the
//! bounded [`ScoreCache`], and ships only the remaining misses through a
//! single batched [`SequenceScorer::score_batch`] call (leave-one-out
//! culprit scoring is batched the same way). Because the model forward is
//! deterministic, batching and caching change cost only: verdicts and
//! report order are identical to the one-window-at-a-time path.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use logsynergy::detector::{InferenceSession, THRESHOLD};
use logsynergy::model::LogSynergyModel;
use parking_lot::Mutex;

use crate::cache::ScoreCache;
use crate::error::{DeadLetter, PipelineError};
use crate::faults::{self, points, Fault};
use crate::patterns::{pattern_key, PatternLibrary, Verdict};
use crate::record::StructuredLog;
use crate::report::Report;
use crate::vectorizer::EventVectorizer;

/// Default capacity of the per-detector window-score cache.
pub const DEFAULT_SCORE_CACHE: usize = 4096;

/// How a batch should be served (the load-shedding switch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeMode {
    /// Full three-tier service: library → cache → batched model.
    Normal,
    /// Overload: answer the cheap tiers (library + cache) only; misses
    /// are counted as shed instead of reaching the model.
    Shed,
}

/// Retry/deadline policy for the model tier.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Transient scorer failures retried per batch before degrading.
    pub max_retries: u32,
    /// Base backoff between retries (doubles per attempt, jittered).
    pub backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
    /// Wall-clock budget for one batch's scoring attempts.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(100),
            deadline: Duration::from_secs(30),
        }
    }
}

/// Anything that can score windows of event ids against an embedding
/// table (the offline-trained model, or a stub in tests).
pub trait SequenceScorer: Send {
    /// Anomaly probability in `[0, 1]` for one window.
    fn score(&self, events: &[u32], table: &[Vec<f32>]) -> f32;

    /// Anomaly probabilities for a micro-batch of windows. The default
    /// implementation loops over [`SequenceScorer::score`], so test stubs
    /// keep working; real scorers override it to amortize per-call cost.
    fn score_batch(&self, windows: &[&[u32]], table: &[Vec<f32>]) -> Vec<f32> {
        windows.iter().map(|w| self.score(w, table)).collect()
    }

    /// Short label of the numeric tier this scorer runs at, published as
    /// the `pipeline.scorer_tier` telemetry tag ("f32" unless overridden).
    fn tier_label(&self) -> &'static str {
        "f32"
    }
}

/// The production scorer: a reusable inference session over a trained
/// LogSynergy model. The model is shared (`Arc`); each clone forks a
/// private session (tape + scratch), so every serving worker scores
/// against the same weights without copying them.
pub struct ModelScorer {
    session: Mutex<InferenceSession>,
}

impl ModelScorer {
    /// Wraps a trained model.
    pub fn new(model: LogSynergyModel) -> Self {
        Self::shared(Arc::new(model))
    }

    /// Wraps an already-shared trained model.
    pub fn shared(model: Arc<LogSynergyModel>) -> Self {
        ModelScorer {
            session: Mutex::new(InferenceSession::new(model)),
        }
    }
}

impl Clone for ModelScorer {
    fn clone(&self) -> Self {
        ModelScorer {
            session: Mutex::new(self.session.lock().fork()),
        }
    }
}

impl SequenceScorer for ModelScorer {
    fn score(&self, events: &[u32], table: &[Vec<f32>]) -> f32 {
        self.session.lock().score_one(events, table)
    }

    fn score_batch(&self, windows: &[&[u32]], table: &[Vec<f32>]) -> Vec<f32> {
        self.session.lock().score_windows(windows, table)
    }
}

/// The int8 serving scorer (`quant` feature): a calibrated
/// [`logsynergy::quant::QuantizedModel`] shared across workers. Scoring
/// takes `&self` and allocates its own scratch per call, so clones share
/// the quantized weights with no locking at all.
///
/// The f32 [`ModelScorer`] remains the default; this tier is opt-in
/// (`--quant`) and is held to the verdict-agreement gate (≥ 99.5% with
/// f32, |ΔF1| ≤ 0.005) asserted in `quant_agreement.rs`.
#[cfg(feature = "quant")]
#[derive(Clone)]
pub struct QuantScorer {
    model: Arc<logsynergy::quant::QuantizedModel>,
}

#[cfg(feature = "quant")]
impl QuantScorer {
    /// Wraps an already-quantized model.
    pub fn new(model: logsynergy::quant::QuantizedModel) -> Self {
        QuantScorer {
            model: Arc::new(model),
        }
    }

    /// Quantizes a trained f32 model against calibration windows drawn
    /// from the deployment's expected traffic.
    pub fn calibrated(
        model: &LogSynergyModel,
        calib_windows: &[&[u32]],
        embeddings: &[Vec<f32>],
    ) -> Self {
        Self::new(logsynergy::quant::QuantizedModel::from_model(
            model,
            calib_windows,
            embeddings,
        ))
    }
}

#[cfg(feature = "quant")]
impl SequenceScorer for QuantScorer {
    fn score(&self, events: &[u32], table: &[Vec<f32>]) -> f32 {
        self.model.score_one(events, table)
    }

    fn score_batch(&self, windows: &[&[u32]], table: &[Vec<f32>]) -> Vec<f32> {
        self.model.score_windows(windows, table)
    }

    fn tier_label(&self) -> &'static str {
        "int8"
    }
}

/// Everything needed to build a [`Report`] for a window after its verdict
/// resolves (the sliding window moves on while scoring is deferred).
struct WindowCtx {
    events: Vec<u32>,
    system: String,
    start_timestamp: u64,
    end_timestamp: u64,
    first_seq_no: u64,
    messages: Vec<String>,
}

/// A window awaiting the batched slow path.
struct Pending {
    ctx: WindowCtx,
    /// Score from the cache (phase 1) or the model (phase 2). Stays
    /// `None` when the batch was shed or degraded.
    score: Option<f32>,
    /// True when phase 1 answered from the score cache.
    from_cache: bool,
}

/// How this batch's cache misses resolved (decided in phase 2).
#[derive(Clone, Copy, PartialEq, Eq)]
enum MissOutcome {
    /// Model tier answered (possibly after retries).
    Scored,
    /// Model tier failed persistently; misses fell back to cheap tiers.
    Degraded,
    /// Load shedding skipped the model tier entirely.
    Shed,
}

/// Per-window resolution recorded in arrival order so reports are emitted
/// exactly as the sequential path would.
enum Slot {
    /// Verdict known inline (library hit); report prebuilt if anomalous.
    Ready(Option<Report>),
    /// First occurrence of a new pattern — owns `Pending` entry `i`.
    Deferred(usize),
    /// Same pattern as pending entry `i` arrived earlier in this batch;
    /// sequentially it would hit the library after `i` was scored.
    Alias(usize, WindowCtx),
}

/// Per-stream window assembler + three-tier detector (library → cache →
/// batched model).
pub struct OnlineDetector<S: SequenceScorer> {
    vectorizer: EventVectorizer,
    scorer: S,
    library: PatternLibrary,
    cache: ScoreCache,
    window_len: usize,
    step: usize,
    window: VecDeque<(u32, StructuredLog)>,
    since_last_window: usize,
    policy: RetryPolicy,
    /// Monotone retry counter; also seeds the deterministic backoff
    /// jitter (no shared RNG).
    retry_seq: u64,
    dead_letters: Vec<DeadLetter>,
    /// Windows scored by the model (slow path).
    pub model_calls: u64,
    /// Windows answered from the pattern library (fast path).
    pub pattern_hits: u64,
    /// Windows answered from the exact-window score cache.
    pub cache_hits: u64,
    /// Windows that fell back to the cheap tiers because the model tier
    /// failed persistently (no verdict emitted).
    pub degraded: u64,
    /// Windows skipped by load shedding (no verdict emitted).
    pub shed: u64,
    /// Windows quarantined to the dead-letter queue after exhausting the
    /// panic-retry budget.
    pub quarantined: u64,
    /// Model-tier retry attempts performed.
    pub retries: u64,
}

/// A restorable snapshot of the detector's mutable serving state, taken
/// before each batch attempt so a faulted attempt can be rolled back and
/// replayed (or quarantined) without double counting.
///
/// The pattern library and score cache are deliberately *not* part of the
/// checkpoint: both are idempotent memoizations of pure, deterministic
/// values, so partial writes from a failed attempt are harmless — a
/// replay recomputes bit-identical entries.
pub struct DetectorCheckpoint {
    window: VecDeque<(u32, StructuredLog)>,
    since_last_window: usize,
    retry_seq: u64,
    dead_letters: usize,
    model_calls: u64,
    pattern_hits: u64,
    cache_hits: u64,
    degraded: u64,
    shed: u64,
    quarantined: u64,
    retries: u64,
}

impl<S: SequenceScorer> OnlineDetector<S> {
    /// Builds a detector with the paper's window geometry (10/5) and the
    /// default score-cache capacity.
    pub fn new(vectorizer: EventVectorizer, scorer: S) -> Self {
        OnlineDetector {
            vectorizer,
            scorer,
            library: PatternLibrary::new(),
            cache: ScoreCache::new(DEFAULT_SCORE_CACHE),
            window_len: 10,
            step: 5,
            window: VecDeque::new(),
            since_last_window: 0,
            policy: RetryPolicy::default(),
            retry_seq: 0,
            dead_letters: Vec::new(),
            model_calls: 0,
            pattern_hits: 0,
            cache_hits: 0,
            degraded: 0,
            shed: 0,
            quarantined: 0,
            retries: 0,
        }
    }

    /// Sets the window-score cache capacity (0 disables the cache).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = ScoreCache::new(capacity);
        self
    }

    /// Bounds the pattern library to `capacity` patterns with LRU
    /// eviction (0 = unbounded, the default). Evicted patterns fall
    /// through to the score cache / model tiers on their next occurrence,
    /// which is what makes main-path cache hits reachable at all: an
    /// unbounded library answers every exact repeat before the cache is
    /// consulted.
    pub fn with_library_capacity(mut self, capacity: usize) -> Self {
        self.library = PatternLibrary::bounded(capacity);
        self
    }

    /// Sets the model-tier retry/deadline policy.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Feeds one structured log; returns a report when a freshly completed
    /// window is anomalous.
    pub fn ingest(&mut self, log: StructuredLog) -> Option<Report> {
        let mut reports = Vec::new();
        self.ingest_batch(std::iter::once(log), &mut reports);
        reports.pop()
    }

    /// Feeds a micro-batch of structured logs, appending any anomaly
    /// reports (in window order) to `reports`.
    ///
    /// All completed windows that miss the fast path and the cache are
    /// scored through one `score_batch` call; a second batched call covers
    /// the leave-one-out culprit search for anomalous windows. Verdicts,
    /// library contents, and report order are identical to feeding the
    /// logs one at a time.
    pub fn ingest_batch(
        &mut self,
        logs: impl IntoIterator<Item = StructuredLog>,
        reports: &mut Vec<Report>,
    ) {
        self.ingest_batch_mode(logs, reports, ServeMode::Normal)
    }

    /// [`OnlineDetector::ingest_batch`] with an explicit serve mode — the
    /// worker passes [`ServeMode::Shed`] while its queue depth is above
    /// the load-shedding watermark.
    ///
    /// Model-tier failures are absorbed here rather than propagated: a
    /// transient scorer failure is retried under [`RetryPolicy`], and a
    /// persistent one degrades this batch's misses to the cheap tiers
    /// (counted in [`OnlineDetector::degraded`], no verdict emitted).
    /// Injected panics are *not* absorbed — they unwind to the worker's
    /// isolation layer, which restores a [`DetectorCheckpoint`].
    pub fn ingest_batch_mode(
        &mut self,
        logs: impl IntoIterator<Item = StructuredLog>,
        reports: &mut Vec<Report>,
        mode: ServeMode,
    ) {
        // Phase 1: assemble windows; resolve library and cache tiers
        // inline; defer model misses. `pending_by_key` mirrors the library
        // insert the sequential path would have performed mid-batch.
        let mut slots: Vec<Slot> = Vec::new();
        let mut pending: Vec<Pending> = Vec::new();
        let mut pending_by_key: HashMap<Vec<u32>, usize> = HashMap::new();

        for log in logs {
            let event = self.vectorizer.ingest(&log.message);
            self.window.push_back((event, log));
            if self.window.len() > self.window_len {
                self.window.pop_front();
            }
            self.since_last_window += 1;
            if self.window.len() < self.window_len || self.since_last_window < self.step {
                continue;
            }
            self.since_last_window = 0;

            let events: Vec<u32> = self.window.iter().map(|(e, _)| *e).collect();
            if let Some(v) = self.library.lookup(&events) {
                self.pattern_hits += 1;
                let report = v.anomalous.then(|| {
                    let ctx = self.snapshot(events);
                    self.build_report(ctx, v)
                });
                slots.push(Slot::Ready(report));
                continue;
            }
            let key = pattern_key(&events);
            if let Some(&i) = pending_by_key.get(&key) {
                // Tier accounting happens in phase 4: whether this alias
                // counts as a pattern hit depends on whether its referent
                // actually resolved to a verdict.
                let ctx = self.snapshot(events);
                slots.push(Slot::Alias(i, ctx));
                continue;
            }
            let score = self.cached_score(&events);
            pending_by_key.insert(key, pending.len());
            slots.push(Slot::Deferred(pending.len()));
            let ctx = self.snapshot(events);
            pending.push(Pending {
                ctx,
                from_cache: score.is_some(),
                score,
            });
        }

        // Phase 2: one batched forward for every window the cache missed
        // (retried/degraded under the policy), unless we are shedding.
        let misses: Vec<usize> = pending
            .iter()
            .enumerate()
            .filter(|(_, p)| p.score.is_none())
            .map(|(i, _)| i)
            .collect();
        let mut miss_outcome = MissOutcome::Scored;
        if !misses.is_empty() {
            match mode {
                ServeMode::Shed => miss_outcome = MissOutcome::Shed,
                ServeMode::Normal => {
                    let windows: Vec<&[u32]> = misses
                        .iter()
                        .map(|&i| pending[i].ctx.events.as_slice())
                        .collect();
                    match self.score_resilient(&windows) {
                        Ok(scores) => {
                            for (&i, &p) in misses.iter().zip(&scores) {
                                self.cache.insert(&pending[i].ctx.events, p);
                                pending[i].score = Some(p);
                            }
                        }
                        Err(_) => miss_outcome = MissOutcome::Degraded,
                    }
                }
            }
        }

        // Phase 3: leave-one-out saliency for anomalous windows — the
        // event whose removal drops the score the most headlines the
        // alert. Reduced windows dedupe within the batch and route
        // through the score cache, and the remainder is one more batched
        // call.
        enum Src {
            Const(f32),
            Batched(usize),
        }
        let mut probes: Vec<(usize, u32, Src)> = Vec::new();
        let mut batch_windows: Vec<Vec<u32>> = Vec::new();
        let mut batch_index: HashMap<Vec<u32>, usize> = HashMap::new();
        for (i, p) in pending.iter().enumerate() {
            // Shed/degraded windows have no score and get no verdict.
            let Some(score) = p.score else { continue };
            if score <= THRESHOLD {
                continue;
            }
            let mut distinct = p.ctx.events.clone();
            distinct.sort_unstable();
            distinct.dedup();
            for id in distinct {
                let reduced: Vec<u32> = p.ctx.events.iter().copied().filter(|&e| e != id).collect();
                let src = if reduced.is_empty() {
                    Src::Const(0.0)
                } else if let Some(s) = self.cache.get(&reduced).filter(|s| s.is_finite()) {
                    Src::Const(s)
                } else if let Some(&j) = batch_index.get(&reduced) {
                    Src::Batched(j)
                } else {
                    let j = batch_windows.len();
                    batch_index.insert(reduced.clone(), j);
                    batch_windows.push(reduced);
                    Src::Batched(j)
                };
                probes.push((i, id, src));
            }
        }
        let probe_scores: Vec<f32> = if batch_windows.is_empty() {
            Vec::new()
        } else {
            let refs: Vec<&[u32]> = batch_windows.iter().map(|w| w.as_slice()).collect();
            match self.score_resilient(&refs) {
                Ok(scores) => {
                    for (w, &s) in batch_windows.iter().zip(&scores) {
                        self.cache.insert(w, s);
                    }
                    scores
                }
                // Saliency is best-effort: if probe scoring fails
                // persistently, verdicts stand and alerts just carry no
                // culprit.
                Err(_) => Vec::new(),
            }
        };
        let mut culprits: Vec<Option<u32>> = vec![None; pending.len()];
        let mut probes = probes.into_iter().peekable();
        while let Some(&(i, _, _)) = probes.peek() {
            let mut best: Option<(u32, f32)> = None;
            while let Some(&(j, _, _)) = probes.peek() {
                if j != i {
                    break;
                }
                let Some((_, id, src)) = probes.next() else {
                    break;
                };
                let p_without = match src {
                    Src::Const(s) => s,
                    // Probe scoring failed persistently: skip this probe
                    // (the verdict stands, the culprit is best-effort).
                    Src::Batched(k) => match probe_scores.get(k) {
                        Some(&s) => s,
                        None => continue,
                    },
                };
                let base = pending[i]
                    .score
                    .expect("probes exist only for scored windows");
                let drop = base - p_without;
                // Same tie-breaking as `Iterator::max_by` over the
                // (id, drop) pairs in ascending-id order: ties keep the
                // later (larger) id.
                best = match best {
                    Some((bid, bdrop)) if drop < bdrop => Some((bid, bdrop)),
                    _ => Some((id, drop)),
                };
            }
            culprits[i] = best.map(|(id, _)| id);
        }

        // Phase 4: commit verdicts (in window order, as the sequential
        // path inserts them), settle tier accounting now that every
        // window's resolution is known, and emit reports in window order.
        // Shed/degraded windows have no verdict: nothing enters the
        // library (a later repeat gets a fresh chance at the model tier)
        // and no report is emitted.
        let verdicts: Vec<Option<Verdict>> = pending
            .iter()
            .zip(&culprits)
            .map(|(p, &culprit)| {
                p.score.map(|probability| Verdict {
                    probability,
                    anomalous: probability > THRESHOLD,
                    culprit,
                })
            })
            .collect();
        for (p, v) in pending.iter().zip(&verdicts) {
            if let Some(v) = v {
                self.library.insert(&p.ctx.events, *v);
            }
        }
        for p in &pending {
            if p.from_cache {
                self.cache_hits += 1;
            } else {
                match miss_outcome {
                    MissOutcome::Scored => self.model_calls += 1,
                    MissOutcome::Degraded => self.degraded += 1,
                    MissOutcome::Shed => self.shed += 1,
                }
            }
        }
        let mut ctxs: Vec<Option<WindowCtx>> = pending.into_iter().map(|p| Some(p.ctx)).collect();
        for slot in slots {
            match slot {
                Slot::Ready(r) => reports.extend(r),
                Slot::Deferred(i) => {
                    if let Some(v) = verdicts[i] {
                        if v.anomalous {
                            let ctx = ctxs[i].take().expect("deferred ctx consumed once");
                            reports.push(self.build_report(ctx, v));
                        }
                    }
                }
                Slot::Alias(i, ctx) => match verdicts[i] {
                    // Sequentially the alias would hit the library right
                    // after its referent was scored.
                    Some(v) => {
                        self.pattern_hits += 1;
                        if v.anomalous {
                            reports.push(self.build_report(ctx, v));
                        }
                    }
                    // The referent never resolved, so sequentially this
                    // window would have been its own miss — it shares the
                    // referent's fate.
                    None => match miss_outcome {
                        MissOutcome::Scored => unreachable!("scored batches resolve all pendings"),
                        MissOutcome::Degraded => self.degraded += 1,
                        MissOutcome::Shed => self.shed += 1,
                    },
                },
            }
        }
    }

    /// Consults the score cache through the `cache.lookup` injection
    /// point, validating the entry so a poisoned score falls back to a
    /// miss (the deterministic model re-scores it to the same bits).
    fn cached_score(&mut self, events: &[u32]) -> Option<f32> {
        let poison = match faults::inject(points::CACHE_LOOKUP) {
            Some(Fault::Panic) => panic!("{}: cache.lookup", faults::PANIC_MARKER),
            Some(Fault::Latency(d)) => {
                std::thread::sleep(d);
                false
            }
            Some(Fault::TransientError) => return None, // forced miss
            Some(Fault::CorruptScore) => true,
            None => false,
        };
        let score = self.cache.get(events)?;
        let score = if poison { f32::NAN } else { score };
        (score.is_finite() && (0.0..=1.0).contains(&score)).then_some(score)
    }

    /// One scoring attempt through the `model.score` injection point,
    /// with the result validated (length, finiteness, range) before any
    /// verdict can be built from it.
    fn score_attempt(&mut self, windows: &[&[u32]]) -> Result<Vec<f32>, PipelineError> {
        let poison = match faults::inject(points::MODEL_SCORE) {
            Some(Fault::Panic) => panic!("{}: model.score", faults::PANIC_MARKER),
            Some(Fault::Latency(d)) => {
                std::thread::sleep(d);
                false
            }
            Some(Fault::TransientError) => return Err(PipelineError::ScorerUnavailable),
            Some(Fault::CorruptScore) => true,
            None => false,
        };
        let mut scores = self.scorer.score_batch(windows, self.vectorizer.table());
        if poison {
            if let Some(s) = scores.first_mut() {
                *s = f32::NAN;
            }
        }
        if scores.len() != windows.len() {
            return Err(PipelineError::ShortScoreBatch {
                expected: windows.len(),
                got: scores.len(),
            });
        }
        if let Some(&bad) = scores
            .iter()
            .find(|s| !s.is_finite() || !(0.0..=1.0).contains(*s))
        {
            return Err(PipelineError::CorruptScore(bad));
        }
        Ok(scores)
    }

    /// Model-tier call with the retry/deadline policy: transient failures
    /// are retried with jittered capped-exponential backoff; exhausting
    /// the budget (or the deadline) returns the error so the caller can
    /// degrade the batch. The model forward is deterministic, so a retry
    /// that succeeds returns bit-identical scores to a fault-free call.
    fn score_resilient(&mut self, windows: &[&[u32]]) -> Result<Vec<f32>, PipelineError> {
        let start = Instant::now();
        let mut attempt = 0u32;
        loop {
            match self.score_attempt(windows) {
                Ok(scores) => return Ok(scores),
                Err(e) if !e.is_transient() => return Err(e),
                Err(e) if attempt >= self.policy.max_retries => return Err(e),
                Err(_) if start.elapsed() >= self.policy.deadline => {
                    return Err(PipelineError::DeadlineExceeded)
                }
                Err(_) => {
                    attempt += 1;
                    self.retries += 1;
                    std::thread::sleep(self.retry_backoff(attempt));
                }
            }
        }
    }

    /// Capped exponential backoff with deterministic jitter derived from
    /// the running retry counter — spreads concurrent workers without a
    /// shared RNG, and replays identically for a given fault schedule.
    fn retry_backoff(&mut self, attempt: u32) -> Duration {
        let base = self.policy.backoff.max(Duration::from_micros(50));
        let capped = base
            .saturating_mul(1u32 << attempt.min(10))
            .min(self.policy.backoff_cap.max(base));
        self.retry_seq = self.retry_seq.wrapping_add(1);
        let mut z = self
            .retry_seq
            .wrapping_add(0x9E3779B97F4A7C15)
            .wrapping_mul(0xBF58476D1CE4E5B9);
        z ^= z >> 31;
        let jitter_ns = z % (capped.as_nanos().max(1) as u64 / 4 + 1);
        capped + Duration::from_nanos(jitter_ns)
    }

    /// Snapshots the mutable serving state before a batch attempt.
    pub fn checkpoint(&self) -> DetectorCheckpoint {
        DetectorCheckpoint {
            window: self.window.clone(),
            since_last_window: self.since_last_window,
            retry_seq: self.retry_seq,
            dead_letters: self.dead_letters.len(),
            model_calls: self.model_calls,
            pattern_hits: self.pattern_hits,
            cache_hits: self.cache_hits,
            degraded: self.degraded,
            shed: self.shed,
            quarantined: self.quarantined,
            retries: self.retries,
        }
    }

    /// Rolls the detector back to a [`DetectorCheckpoint`] after a
    /// faulted batch attempt, so the batch can be replayed (or
    /// quarantined) without double counting windows.
    pub fn restore(&mut self, cp: DetectorCheckpoint) {
        self.window = cp.window;
        self.since_last_window = cp.since_last_window;
        self.retry_seq = cp.retry_seq;
        self.dead_letters.truncate(cp.dead_letters);
        self.model_calls = cp.model_calls;
        self.pattern_hits = cp.pattern_hits;
        self.cache_hits = cp.cache_hits;
        self.degraded = cp.degraded;
        self.shed = cp.shed;
        self.quarantined = cp.quarantined;
        self.retries = cp.retries;
    }

    /// Consumes a batch that exhausted its panic-retry budget: windows
    /// are still assembled (so the sliding-window state and the global
    /// window count stay consistent) but every completed window is
    /// quarantined to the dead-letter queue instead of being scored.
    ///
    /// This path runs no tier lookups and no scorer calls — it contains
    /// no injection points, so it cannot fault again.
    pub fn quarantine_batch(
        &mut self,
        logs: impl IntoIterator<Item = StructuredLog>,
        reason: &str,
    ) {
        for log in logs {
            let event = self.vectorizer.ingest(&log.message);
            self.window.push_back((event, log));
            if self.window.len() > self.window_len {
                self.window.pop_front();
            }
            self.since_last_window += 1;
            if self.window.len() < self.window_len || self.since_last_window < self.step {
                continue;
            }
            self.since_last_window = 0;
            self.quarantined += 1;
            let (first, last) = match (self.window.front(), self.window.back()) {
                (Some((_, f)), Some((_, l))) => (f, l),
                _ => continue,
            };
            self.dead_letters.push(DeadLetter {
                system: first.system.clone(),
                start_timestamp: first.timestamp,
                end_timestamp: last.timestamp,
                first_seq_no: first.seq_no,
                reason: reason.to_string(),
            });
        }
    }

    /// Drains the dead-letter queue (quarantined windows).
    pub fn take_dead_letters(&mut self) -> Vec<DeadLetter> {
        std::mem::take(&mut self.dead_letters)
    }

    /// The dead-letter queue of quarantined windows.
    pub fn dead_letters(&self) -> &[DeadLetter] {
        &self.dead_letters
    }

    /// Snapshots the current window into an owned report context.
    fn snapshot(&self, events: Vec<u32>) -> WindowCtx {
        let first = &self.window.front().expect("window non-empty").1;
        let last = &self.window.back().expect("window non-empty").1;
        WindowCtx {
            events,
            system: first.system.clone(),
            start_timestamp: first.timestamp,
            end_timestamp: last.timestamp,
            first_seq_no: first.seq_no,
            messages: self.window.iter().map(|(_, l)| l.message.clone()).collect(),
        }
    }

    fn build_report(&self, ctx: WindowCtx, verdict: Verdict) -> Report {
        Report {
            system: ctx.system,
            probability: verdict.probability,
            start_timestamp: ctx.start_timestamp,
            end_timestamp: ctx.end_timestamp,
            first_seq_no: ctx.first_seq_no,
            interpretations: ctx
                .events
                .iter()
                .map(|&e| self.vectorizer.text(e).to_string())
                .collect(),
            messages: ctx.messages,
            culprit: verdict
                .culprit
                .map(|id| self.vectorizer.text(id).to_string()),
        }
    }

    /// The underlying vectorizer (template statistics).
    pub fn vectorizer(&self) -> &EventVectorizer {
        &self.vectorizer
    }

    /// Pattern-library size.
    pub fn library_len(&self) -> usize {
        self.library.len()
    }

    /// Window-score cache occupancy.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Window-score cache `(hits, misses)`, including the leave-one-out
    /// probe lookups that never surface in [`Self::cache_hits`].
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Window geometry as `(window_len, step)`.
    pub fn geometry(&self) -> (usize, usize) {
        (self.window_len, self.step)
    }

    /// Window-assembler state as `(window_fill, since_last_window)` —
    /// exactly what a durable cursor commit must persist for recovery to
    /// resume window emission at the committed boundary.
    pub fn assembler_state(&self) -> (usize, usize) {
        (self.window.len(), self.since_last_window)
    }

    /// Re-primes the sliding-window assembler from recovered WAL context:
    /// pushes `logs` through the vectorizer into the window deque without
    /// emitting windows or touching any tier counter, then pins the
    /// since-last-window counter to its committed value. Durable recovery
    /// calls this before replaying unacked records, so the first window
    /// after a restart completes at exactly the same record it would have
    /// without the crash.
    pub fn prime_context(
        &mut self,
        logs: impl IntoIterator<Item = StructuredLog>,
        since_last_window: usize,
    ) {
        for log in logs {
            let event = self.vectorizer.ingest(&log.message);
            self.window.push_back((event, log));
            if self.window.len() > self.window_len {
                self.window.pop_front();
            }
        }
        self.since_last_window = since_last_window;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logsynergy_lei::LeiConfig;
    use logsynergy_loggen::SystemId;

    /// Flags windows containing the token "dead".
    struct StubScorer;
    impl SequenceScorer for StubScorer {
        fn score(&self, events: &[u32], table: &[Vec<f32>]) -> f32 {
            let _ = table;
            if events.iter().any(|&e| e >= 1) {
                0.9
            } else {
                0.1
            }
        }
    }

    fn slog(i: u64, msg: &str) -> StructuredLog {
        StructuredLog {
            system: "b".into(),
            timestamp: i,
            message: msg.into(),
            seq_no: i,
        }
    }

    #[test]
    fn windows_fire_every_step_and_reports_carry_interpretations() {
        let v = EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());
        let mut det = OnlineDetector::new(v, StubScorer);
        let mut reports = Vec::new();
        for i in 0..30 {
            let msg = if i == 17 {
                "drive volume dead offline"
            } else {
                "session open remote peer"
            };
            if let Some(r) = det.ingest(slog(i, msg)) {
                reports.push(r);
            }
        }
        assert!(
            !reports.is_empty(),
            "the anomalous log must produce a report"
        );
        assert!(det.model_calls > 0);
        for r in &reports {
            assert_eq!(r.messages.len(), 10);
            assert_eq!(r.interpretations.len(), 10);
            assert!(r.probability > THRESHOLD);
        }
    }

    #[test]
    fn pattern_library_serves_repeats() {
        let v = EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());
        let mut det = OnlineDetector::new(v, StubScorer);
        for i in 0..200 {
            det.ingest(slog(i, "steady state heartbeat ping"));
        }
        assert!(
            det.pattern_hits > 0,
            "identical windows must hit the fast path"
        );
        assert!(
            det.model_calls < 5,
            "steady-state stream should rarely reach the model: {}",
            det.model_calls
        );
        assert_eq!(det.library_len() as u64, det.model_calls);
    }

    #[test]
    fn batched_ingest_matches_sequential_ingest() {
        let make = || {
            let v = EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());
            OnlineDetector::new(v, StubScorer)
        };
        let stream: Vec<StructuredLog> = (0..120)
            .map(|i| {
                let msg = match i {
                    17 | 18 | 61 => "drive volume dead offline",
                    _ if i % 7 == 0 => "session open remote peer",
                    _ => "steady state heartbeat ping",
                };
                slog(i, msg)
            })
            .collect();

        let mut seq_det = make();
        let mut seq_reports = Vec::new();
        for log in stream.clone() {
            if let Some(r) = seq_det.ingest(log) {
                seq_reports.push(r);
            }
        }

        for chunk_size in [3usize, 16, 50, 120] {
            let mut det = make();
            let mut reports = Vec::new();
            for chunk in stream.chunks(chunk_size) {
                det.ingest_batch(chunk.to_vec(), &mut reports);
            }
            assert_eq!(reports, seq_reports, "chunk size {chunk_size}");
            assert_eq!(
                det.pattern_hits, seq_det.pattern_hits,
                "chunk size {chunk_size}"
            );
            assert_eq!(
                det.model_calls + det.cache_hits,
                seq_det.model_calls + seq_det.cache_hits,
                "chunk size {chunk_size}"
            );
            assert_eq!(
                det.library_len(),
                seq_det.library_len(),
                "chunk size {chunk_size}"
            );
        }
    }

    /// A scorer that records how many windows each call carried.
    struct CountingScorer {
        batches: std::sync::Mutex<Vec<usize>>,
    }
    impl SequenceScorer for CountingScorer {
        fn score(&self, _events: &[u32], _table: &[Vec<f32>]) -> f32 {
            self.batches.lock().unwrap().push(1);
            0.1
        }
        fn score_batch(&self, windows: &[&[u32]], _table: &[Vec<f32>]) -> Vec<f32> {
            self.batches.lock().unwrap().push(windows.len());
            windows.iter().map(|_| 0.1).collect()
        }
    }

    #[test]
    fn misses_ship_in_one_batched_call() {
        let v = EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());
        let scorer = CountingScorer {
            batches: std::sync::Mutex::new(Vec::new()),
        };
        let mut det = OnlineDetector::new(v, scorer);
        // 12 distinct messages cycle so every window is a new pattern.
        let logs: Vec<StructuredLog> = (0..60)
            .map(|i| slog(i, &format!("unique event kind {} stream", i % 12)))
            .collect();
        let mut reports = Vec::new();
        det.ingest_batch(logs, &mut reports);
        let batches = det.scorer.batches.lock().unwrap().clone();
        assert_eq!(
            batches.len(),
            1,
            "all misses must ship in one batched call: {batches:?}"
        );
        assert_eq!(batches[0] as u64, det.model_calls);
    }
}
