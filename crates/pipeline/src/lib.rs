//! # logsynergy-pipeline
//!
//! The production deployment workflow of the paper's §VI (Fig. 7), as an
//! in-process dataflow:
//!
//! - **Collection**: a shipper thread (Filebeat stand-in) feeds a bounded,
//!   partitioned buffer ([`buffer::LogBuffer`], the Kafka stage) and a
//!   formatter normalizes records ([`record::format_log`], the Logstash
//!   stage);
//! - **Detection**: one worker per buffer partition runs a sliding-window
//!   assembler; a pattern library ([`patterns::PatternLibrary`]) answers
//!   repeated patterns on the fast path, a bounded LRU score cache
//!   ([`cache::ScoreCache`]) answers repeated exact windows, and the
//!   offline-trained LogSynergy model scores the remaining windows in one
//!   micro-batched call ([`detect::OnlineDetector::ingest_batch`]); new
//!   templates are interpreted and embedded online
//!   ([`vectorizer::EventVectorizer`]);
//! - **Report**: anomalies become operator alerts combining the raw
//!   sequence with its LEI interpretations, delivered through
//!   [`report::ReportSink`]s (SMS/email stand-ins).

#![warn(missing_docs)]

pub mod buffer;
pub mod cache;
pub mod detect;
pub mod durable;
pub mod error;
pub mod faults;
pub mod patterns;
pub mod record;
pub mod report;
pub mod service;
pub mod vectorizer;

pub use buffer::{BufferStats, LogBuffer};
pub use cache::ScoreCache;
#[cfg(feature = "quant")]
pub use detect::QuantScorer;
pub use detect::{
    ModelScorer, OnlineDetector, RetryPolicy, SequenceScorer, ServeMode, DEFAULT_SCORE_CACHE,
};
pub use durable::{start_durable, DurablePipeline, DurableProducer, WalOptions};
pub use error::{DeadLetter, PipelineError};
pub use patterns::{pattern_key, PatternLibrary, Verdict};
pub use record::{format_log, RawLog, StructuredLog};
pub use report::{MemorySink, MessagingSink, Report, ReportSink};
pub use service::{run_pipeline, run_pipeline_with, PipelineConfig, PipelineSummary};
pub use vectorizer::EventVectorizer;
