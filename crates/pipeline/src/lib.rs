//! # logsynergy-pipeline
//!
//! The production deployment workflow of the paper's §VI (Fig. 7), as an
//! in-process dataflow:
//!
//! - **Collection**: a shipper thread (Filebeat stand-in) feeds a bounded,
//!   partitioned buffer ([`buffer::LogBuffer`], the Kafka stage) and a
//!   formatter normalizes records ([`record::format_log`], the Logstash
//!   stage);
//! - **Detection**: a sliding-window assembler builds sequences, a
//!   pattern library ([`patterns::PatternLibrary`]) answers repeated
//!   patterns on the fast path, and the offline-trained LogSynergy model
//!   scores new patterns ([`detect::OnlineDetector`]); new templates are
//!   interpreted and embedded online ([`vectorizer::EventVectorizer`]);
//! - **Report**: anomalies become operator alerts combining the raw
//!   sequence with its LEI interpretations, delivered through
//!   [`report::ReportSink`]s (SMS/email stand-ins).

#![warn(missing_docs)]

pub mod buffer;
pub mod detect;
pub mod patterns;
pub mod record;
pub mod report;
pub mod service;
pub mod vectorizer;

pub use buffer::{BufferStats, LogBuffer};
pub use detect::{ModelScorer, OnlineDetector, SequenceScorer};
pub use patterns::{PatternLibrary, Verdict};
pub use record::{format_log, RawLog, StructuredLog};
pub use report::{MemorySink, MessagingSink, Report, ReportSink};
pub use service::{run_pipeline, PipelineSummary};
pub use vectorizer::EventVectorizer;
