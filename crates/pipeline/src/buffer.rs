//! The Kafka-stage buffer: bounded, partitioned, backpressuring.

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError, TrySendError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::PipelineError;
use crate::faults::{self, points, Fault};
use crate::record::RawLog;

/// The FNV-1a hash behind keyed partition routing, shared by the buffer
/// and every producer handle so routing decisions agree everywhere.
fn system_hash(system: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in system.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Buffer throughput counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Messages accepted.
    pub enqueued: u64,
    /// Messages handed to consumers.
    pub dequeued: u64,
}

/// A bounded, partitioned log buffer. Producers block when a partition is
/// full (backpressure, like a Kafka producer with acks), consumers drain
/// partitions round-robin.
pub struct LogBuffer {
    senders: Vec<Sender<RawLog>>,
    receivers: Vec<Receiver<RawLog>>,
    stats: Arc<Mutex<BufferStats>>,
    /// Per-partition occupancy, maintained on both sides of the channel
    /// (the vendored channel has no `len()`); feeds queue-depth telemetry.
    depths: Arc<Vec<AtomicI64>>,
}

impl LogBuffer {
    /// Creates a buffer with `partitions` queues of `capacity` each.
    pub fn new(partitions: usize, capacity: usize) -> Self {
        assert!(partitions > 0 && capacity > 0);
        let mut senders = Vec::with_capacity(partitions);
        let mut receivers = Vec::with_capacity(partitions);
        for _ in 0..partitions {
            let (s, r) = bounded(capacity);
            senders.push(s);
            receivers.push(r);
        }
        LogBuffer {
            senders,
            receivers,
            stats: Arc::new(Mutex::new(BufferStats::default())),
            depths: Arc::new((0..partitions).map(|_| AtomicI64::new(0)).collect()),
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.senders.len()
    }

    fn partition_of(&self, system: &str) -> usize {
        (system_hash(system) % self.senders.len() as u64) as usize
    }

    /// Producer handle (cheap to clone).
    pub fn producer(&self) -> Producer {
        Producer {
            senders: self.senders.clone(),
            stats: self.stats.clone(),
            depths: self.depths.clone(),
            router: None,
        }
    }

    /// Consumer handle draining all partitions.
    pub fn consumer(&self) -> Consumer {
        Consumer {
            receivers: self.receivers.clone(),
            stats: self.stats.clone(),
            depths: self.depths.clone(),
            parts: (0..self.receivers.len()).collect(),
            next: 0,
        }
    }

    /// Consumer handle bound to a single partition — one per detection
    /// worker, so each worker drains exactly its shard and per-system
    /// order is a single-queue property.
    pub fn partition_consumer(&self, partition: usize) -> Consumer {
        Consumer {
            receivers: vec![self.receivers[partition].clone()],
            stats: self.stats.clone(),
            depths: self.depths.clone(),
            parts: vec![partition],
            next: 0,
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> BufferStats {
        self.stats.lock().clone()
    }

    /// Keyed partition index for a system (exposed for tests).
    pub fn partition_for(&self, system: &str) -> usize {
        self.partition_of(system)
    }
}

/// Sending side of the buffer.
pub struct Producer {
    senders: Vec<Sender<RawLog>>,
    stats: Arc<Mutex<BufferStats>>,
    depths: Arc<Vec<AtomicI64>>,
    router: Option<usize>,
}

impl Producer {
    /// Blocking send; partition chosen by the log's system key (same
    /// system → same partition → per-system ordering, as Kafka gives).
    ///
    /// Panics if the buffer is closed; shippers that must survive worker
    /// loss use [`Producer::try_send`] instead.
    pub fn send(&self, log: RawLog) {
        self.try_send(log)
            .map_err(|(_, e)| e)
            .expect("buffer closed while producing");
    }

    /// Number of partitions behind this producer.
    pub fn partitions(&self) -> usize {
        self.senders.len()
    }

    /// The partition a system key routes to (ignoring any pin).
    pub fn partition_for(&self, system: &str) -> usize {
        (system_hash(system) % self.senders.len() as u64) as usize
    }

    /// A clone of this handle pinned to one partition: every send routes
    /// there regardless of the record's system key. The ingest daemon uses
    /// pinned handles for fair-share tenant routing (a tenant owns a
    /// stable partition subset instead of hashing across all shards).
    pub fn pinned(&self, partition: usize) -> Producer {
        assert!(partition < self.senders.len());
        Producer {
            senders: self.senders.clone(),
            stats: self.stats.clone(),
            depths: self.depths.clone(),
            router: Some(partition),
        }
    }

    /// Logs currently queued in `partition` (telemetry-grade: relaxed
    /// counters, clamped at 0; see [`Consumer::depth`]).
    pub fn depth(&self, partition: usize) -> u64 {
        self.depths[partition].load(Ordering::Relaxed).max(0) as u64
    }

    fn route(&self, system: &str) -> usize {
        match self.router {
            Some(p) => p,
            None => (system_hash(system) % self.senders.len() as u64) as usize,
        }
    }

    /// Blocking send that reports a closed buffer as a typed error
    /// instead of panicking, handing the undeliverable record back so
    /// the caller can retry, persist, or drop it deliberately. The error
    /// names the partition whose channel rejected the record.
    pub fn try_send(&self, log: RawLog) -> Result<(), (RawLog, PipelineError)> {
        let p = self.route(&log.system);
        match self.senders[p].send(log) {
            Ok(()) => {}
            Err(e) => return Err((e.0, PipelineError::BufferClosed { partition: p })),
        }
        self.depths[p].fetch_add(1, Ordering::Relaxed);
        self.stats.lock().enqueued += 1;
        Ok(())
    }

    /// Blocking [`Producer::try_send`] with the partition chosen by the
    /// caller; blocks while the shard is full (backpressure) and reports
    /// a closed shard as a typed error. Panics if `partition` is out of
    /// range.
    pub fn send_to(&self, partition: usize, log: RawLog) -> Result<(), (RawLog, PipelineError)> {
        match self.senders[partition].send(log) {
            Ok(()) => {}
            Err(e) => return Err((e.0, PipelineError::BufferClosed { partition })),
        }
        self.depths[partition].fetch_add(1, Ordering::Relaxed);
        self.stats.lock().enqueued += 1;
        Ok(())
    }

    /// Blocking [`Producer::send_to`] for a whole batch — the
    /// group-commit enqueue path. The channel still takes one send per
    /// record, but the depth counter and the stats lock are touched
    /// once per batch instead of once per record. On a closed shard the
    /// unsent suffix is handed back (records already enqueued are
    /// accounted).
    pub fn send_many_to(
        &self,
        partition: usize,
        logs: Vec<RawLog>,
    ) -> Result<(), (Vec<RawLog>, PipelineError)> {
        let mut sent = 0i64;
        let mut it = logs.into_iter();
        let mut closed = None;
        for log in it.by_ref() {
            match self.senders[partition].send(log) {
                Ok(()) => sent += 1,
                Err(e) => {
                    let mut rest = vec![e.0];
                    rest.extend(it);
                    closed = Some(rest);
                    break;
                }
            }
        }
        if sent > 0 {
            self.depths[partition].fetch_add(sent, Ordering::Relaxed);
            self.stats.lock().enqueued += sent as u64;
        }
        match closed {
            Some(rest) => Err((rest, PipelineError::BufferClosed { partition })),
            None => Ok(()),
        }
    }

    /// Non-blocking send: enqueues immediately or hands the record back
    /// with the rejecting partition ([`PipelineError::BufferFull`] under
    /// backpressure, [`PipelineError::BufferClosed`] when the consumer is
    /// gone). Network front doors use this to turn a full shard into a
    /// client-visible backpressure signal instead of a blocked thread.
    pub fn offer(&self, log: RawLog) -> Result<(), (RawLog, PipelineError)> {
        self.offer_to(self.route(&log.system), log)
    }

    /// [`Producer::offer`] with the partition chosen by the caller —
    /// the fair-share tenant router picks a shard from a tenant's subset
    /// and offers straight to it without cloning a pinned handle per
    /// record. Panics if `partition` is out of range.
    pub fn offer_to(&self, partition: usize, log: RawLog) -> Result<(), (RawLog, PipelineError)> {
        let p = partition;
        match self.senders[p].try_send(log) {
            Ok(()) => {}
            Err(TrySendError::Full(log)) => {
                return Err((log, PipelineError::BufferFull { partition: p }))
            }
            Err(TrySendError::Disconnected(log)) => {
                return Err((log, PipelineError::BufferClosed { partition: p }))
            }
        }
        self.depths[p].fetch_add(1, Ordering::Relaxed);
        self.stats.lock().enqueued += 1;
        Ok(())
    }
}

/// Receiving side of the buffer.
pub struct Consumer {
    receivers: Vec<Receiver<RawLog>>,
    stats: Arc<Mutex<BufferStats>>,
    depths: Arc<Vec<AtomicI64>>,
    /// Buffer partition index behind each entry of `receivers`.
    parts: Vec<usize>,
    next: usize,
}

impl Consumer {
    /// Round-robin receive with a timeout; `None` when every partition is
    /// empty and all producers are gone or the timeout elapses.
    pub fn recv(&mut self, timeout: Duration) -> Option<RawLog> {
        let n = self.receivers.len();
        // Fast path: try every partition once without blocking.
        for i in 0..n {
            let idx = (self.next + i) % n;
            if let Ok(log) = self.receivers[idx].try_recv() {
                self.depths[self.parts[idx]].fetch_sub(1, Ordering::Relaxed);
                self.next = (idx + 1) % n;
                self.stats.lock().dequeued += 1;
                return Some(log);
            }
        }
        // Slow path: block on the next partition in line.
        let idx = self.next % n;
        match self.receivers[idx].recv_timeout(timeout) {
            Ok(log) => {
                self.depths[self.parts[idx]].fetch_sub(1, Ordering::Relaxed);
                self.next = (idx + 1) % n;
                self.stats.lock().dequeued += 1;
                Some(log)
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Drains up to `max` logs as one burst, waiting at most `deadline`.
    ///
    /// Returns as soon as `max` logs are in hand; otherwise collects
    /// whatever arrives until the deadline elapses and returns the partial
    /// batch (possibly empty — keep polling). Returns `None` only when
    /// every partition is drained *and* all producers are gone: the
    /// definitive end of stream, unlike [`Consumer::recv`]'s
    /// timeout-conflating `None`. The dequeue counter is updated once per
    /// batch — one lock round-trip per burst instead of one per log.
    pub fn recv_batch(&mut self, max: usize, deadline: Duration) -> Option<Vec<RawLog>> {
        // `batch.drain` injection point, consulted before any record is
        // pulled off a channel so an injected panic can never lose logs
        // (the worker's isolation layer re-enters and drains normally).
        match faults::inject(points::BATCH_DRAIN) {
            Some(Fault::Panic) => panic!("{}: batch.drain", faults::PANIC_MARKER),
            Some(Fault::Latency(d)) => std::thread::sleep(d),
            Some(Fault::TransientError) => return Some(Vec::new()),
            Some(Fault::CorruptScore) | None => {}
        }
        let n = self.receivers.len();
        let end = Instant::now() + deadline;
        let mut out = Vec::with_capacity(max.min(1024));
        let mut disconnected = 0usize;
        'collect: while out.len() < max {
            // Sweep every partition without blocking.
            disconnected = 0;
            let mut drained = true;
            for i in 0..n {
                let idx = (self.next + i) % n;
                match self.receivers[idx].try_recv() {
                    Ok(log) => {
                        self.depths[self.parts[idx]].fetch_sub(1, Ordering::Relaxed);
                        self.next = (idx + 1) % n;
                        out.push(log);
                        drained = false;
                        if out.len() >= max {
                            break 'collect;
                        }
                    }
                    Err(TryRecvError::Empty) => {}
                    Err(TryRecvError::Disconnected) => disconnected += 1,
                }
            }
            if disconnected == n {
                break;
            }
            if !drained {
                continue;
            }
            // Everything is empty: block on the next live partition until
            // the deadline.
            let now = Instant::now();
            if now >= end {
                break;
            }
            let idx = self.next % n;
            match self.receivers[idx].recv_timeout(end - now) {
                Ok(log) => {
                    self.depths[self.parts[idx]].fetch_sub(1, Ordering::Relaxed);
                    self.next = (idx + 1) % n;
                    out.push(log);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    // This partition is finished; rotate past it and let
                    // the sweep decide whether every partition is done.
                    self.next = (idx + 1) % n;
                }
            }
        }
        if out.is_empty() && disconnected == n {
            return None;
        }
        self.stats.lock().dequeued += out.len() as u64;
        Some(out)
    }

    /// Logs currently queued in this consumer's partitions. Producer and
    /// consumer update the underlying counters independently with relaxed
    /// atomics, so a reading can be momentarily stale (a transient negative
    /// is clamped to 0) — fine for a telemetry gauge, not a sync primitive.
    pub fn depth(&self) -> u64 {
        self.parts
            .iter()
            .map(|&p| self.depths[p].load(Ordering::Relaxed).max(0) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(system: &str, i: u64) -> RawLog {
        RawLog {
            system: system.into(),
            timestamp: i,
            message: format!("m{i}"),
        }
    }

    #[test]
    fn same_system_preserves_order() {
        let buf = LogBuffer::new(4, 64);
        let p = buf.producer();
        for i in 0..20 {
            p.send(raw("alpha", i));
        }
        let mut c = buf.consumer();
        let mut seen = Vec::new();
        while let Some(l) = c.recv(Duration::from_millis(10)) {
            seen.push(l.timestamp);
        }
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn stats_count_both_sides() {
        let buf = LogBuffer::new(2, 16);
        let p = buf.producer();
        for i in 0..5 {
            p.send(raw("x", i));
        }
        let mut c = buf.consumer();
        while c.recv(Duration::from_millis(5)).is_some() {}
        let s = buf.stats();
        assert_eq!(s.enqueued, 5);
        assert_eq!(s.dequeued, 5);
    }

    #[test]
    fn different_systems_route_to_stable_partitions() {
        let buf = LogBuffer::new(3, 8);
        assert_eq!(buf.partition_for("web"), buf.partition_for("web"));
    }

    #[test]
    fn recv_batch_returns_partial_batch_on_timeout() {
        let buf = LogBuffer::new(1, 64);
        let p = buf.producer();
        for i in 0..3 {
            p.send(raw("x", i));
        }
        let mut c = buf.consumer();
        // Producer still connected: the deadline, not disconnection, ends
        // the wait, and the partial batch comes back intact and in order.
        let start = Instant::now();
        let batch = c.recv_batch(10, Duration::from_millis(30)).unwrap();
        assert_eq!(
            batch.iter().map(|l| l.timestamp).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "partial batch must hold everything sent before the deadline"
        );
        assert!(
            start.elapsed() >= Duration::from_millis(30),
            "an unfilled batch waits out the deadline"
        );
        // Nothing arrives: an empty batch, not end-of-stream.
        assert_eq!(c.recv_batch(10, Duration::from_millis(5)).unwrap().len(), 0);
        // Every sender gone (the buffer holds one per partition) and the
        // queue drained: definitive end of stream.
        drop(p);
        drop(buf);
        assert!(c.recv_batch(10, Duration::from_millis(5)).is_none());
    }

    #[test]
    fn recv_batch_fills_to_cap_without_waiting() {
        let buf = LogBuffer::new(2, 64);
        let p = buf.producer();
        for i in 0..20 {
            p.send(raw(if i % 2 == 0 { "even" } else { "odd" }, i));
        }
        let mut c = buf.consumer();
        let start = Instant::now();
        let batch = c.recv_batch(8, Duration::from_secs(5)).unwrap();
        assert_eq!(batch.len(), 8, "a full queue fills the cap immediately");
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "a full batch must not wait for the deadline"
        );
        // Batch accounting hits the stats lock once per burst.
        assert_eq!(buf.stats().dequeued, 8);
    }

    #[test]
    fn partition_consumer_sees_only_its_shard() {
        let buf = LogBuffer::new(4, 64);
        let p = buf.producer();
        for i in 0..12 {
            p.send(raw("alpha", i));
        }
        let home = buf.partition_for("alpha");
        let mut consumers: Vec<Consumer> = (0..4).map(|p| buf.partition_consumer(p)).collect();
        // Drop every sender (producer handle and the buffer's own copies)
        // so exhausted shards report end-of-stream.
        drop(p);
        drop(buf);
        for (part, c) in consumers.iter_mut().enumerate() {
            let batch = c.recv_batch(64, Duration::from_millis(5));
            if part == home {
                let got = batch.expect("home partition holds the stream");
                assert_eq!(
                    got.iter().map(|l| l.timestamp).collect::<Vec<_>>(),
                    (0..12).collect::<Vec<_>>(),
                    "per-system order within the shard"
                );
                assert!(
                    c.recv_batch(64, Duration::from_millis(5)).is_none(),
                    "drained shard ends the stream"
                );
            } else {
                assert!(batch.is_none(), "foreign shards are empty and disconnected");
            }
        }
    }

    #[test]
    fn offer_reports_the_rejecting_partition() {
        let buf = LogBuffer::new(2, 1);
        let p = buf.producer();
        let pinned = p.pinned(1);
        pinned.offer(raw("anything", 0)).unwrap();
        // Partition 1 is at capacity: the non-blocking path hands the
        // record back and names the shard that back-pressured.
        let (log, err) = pinned.offer(raw("anything", 1)).unwrap_err();
        assert_eq!(log.timestamp, 1);
        assert_eq!(err, PipelineError::BufferFull { partition: 1 });
        assert_eq!(pinned.depth(1), 1);
        assert_eq!(pinned.depth(0), 0);
        // Consumer gone: the same call reports the closed partition.
        let mut c = buf.partition_consumer(1);
        assert!(c.recv(Duration::from_millis(10)).is_some());
        drop(c);
        drop(buf);
        let (_, err) = pinned.offer(raw("anything", 2)).unwrap_err();
        assert_eq!(err, PipelineError::BufferClosed { partition: 1 });
    }

    #[test]
    fn pinned_producer_overrides_keyed_routing() {
        let buf = LogBuffer::new(4, 8);
        let p = buf.producer();
        let target = (buf.partition_for("alpha") + 1) % 4;
        let pinned = p.pinned(target);
        assert_eq!(p.partition_for("alpha"), buf.partition_for("alpha"));
        pinned.send(raw("alpha", 0));
        let mut c = buf.partition_consumer(target);
        assert!(
            c.recv(Duration::from_millis(10)).is_some(),
            "pinned send must land in the pinned partition"
        );
    }

    #[test]
    fn producer_blocks_until_consumed() {
        // Capacity-1 buffer: a second send must wait for the consumer.
        let buf = LogBuffer::new(1, 1);
        let p = buf.producer();
        let mut c = buf.consumer();
        p.send(raw("x", 0));
        let handle = std::thread::spawn(move || {
            p.send(raw("x", 1)); // blocks until the consumer drains one
            "sent"
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(c.recv(Duration::from_millis(100)).is_some());
        assert_eq!(handle.join().unwrap(), "sent");
        assert!(c.recv(Duration::from_millis(100)).is_some());
    }
}
