//! Fault injection for the serving pipeline — a re-export of the core
//! crate's deterministic [`FaultPlan`] machinery plus the map of where
//! each named injection point is armed in this crate.
//!
//! | Point | Armed in | Fault semantics |
//! |---|---|---|
//! | [`points::BUFFER_PUSH`] | shipper loop in [`crate::service`] | `Panic`/`TransientError` → the send attempt fails and is retried with backoff (no record lost); `Latency` → slow producer |
//! | [`points::BATCH_DRAIN`] | [`crate::buffer::Consumer::recv_batch`] entry | `Panic` → worker restart path; `TransientError` → empty batch; `Latency` → slow consumer (builds backpressure) |
//! | [`points::CACHE_LOOKUP`] | score-cache probe in [`crate::detect`] | `Panic` → worker restart path; `TransientError` → forced miss; `CorruptScore` → poisoned entry the validator drops to a miss |
//! | [`points::MODEL_SCORE`] | model-tier call in [`crate::detect`] | `Panic` → worker restart path; `TransientError` → retried with jittered backoff; `CorruptScore` → non-finite score the validator rejects; `Latency` → slow model |
//! | [`points::PERSIST_IO`] | `logsynergy::persist::{save, load}` | `TransientError` → retried interrupted I/O; `Panic` → caller's isolation |
//! | [`points::INGEST_ACCEPT`] | accept loop of the `logsynergy-serve` daemon | `Panic` → caught in place, the connection is dropped, the daemon lives; `TransientError` → accept-path failure (connection dropped); `Latency` → slow accept |
//! | [`points::INGEST_PARSE`] | per-line parse in a `logsynergy-serve` connection handler | `Panic` → escapes to the handler's isolation layer (one connection lost, handler restarts); `TransientError` → surfaced as a 400 parse-error frame; `Latency` → slow parse |
//! | [`points::WAL_APPEND`] | record append and cursor commit in `logsynergy::wal` | `Panic` → a simulated crash before anything is written (producer death or worker death, by call site); `TransientError` → the append fails typed and is retried ([`crate::error::PipelineError::WalAppend`]) |
//! | [`points::WAL_ROLL`] | segment roll in `logsynergy::wal` | `Panic` → crash between closing one segment and opening the next; `TransientError` → the roll (and its append) fails typed |
//! | [`points::WAL_RECOVER`] | recovery scan in `logsynergy::wal` | `Panic` → crash mid-recovery (recovery is read-only, so the retry re-runs it); `TransientError` → the scan fails typed and may be retried |
//!
//! Everything here compiles to inert no-ops unless the crate is built
//! with `--features fault-injection`; see `docs/robustness.md` for how to
//! write a seeded plan in a test.

pub use logsynergy::faults::{
    inject, points, Fault, FaultGuard, FaultPlan, FaultSpec, PANIC_MARKER,
};

#[cfg(feature = "fault-injection")]
pub use logsynergy::faults::test_lock;
