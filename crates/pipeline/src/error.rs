//! Typed failures for the serving pipeline, and the dead-letter record
//! kept for quarantined windows.
//!
//! The serving loop never `unwrap()`s its way across a trust boundary:
//! failures that can reach it from malformed input, a wedged scorer, or a
//! closed buffer surface as [`PipelineError`] values the recovery layer
//! (retry → degrade → quarantine, see `docs/robustness.md`) can act on.

use std::fmt;

/// A typed, recoverable pipeline failure.
#[derive(Clone, Debug, PartialEq)]
pub enum PipelineError {
    /// Every consumer handle is gone; the buffer cannot accept records.
    BufferClosed {
        /// The partition whose channel rejected the record.
        partition: usize,
    },
    /// A non-blocking enqueue found the partition at capacity
    /// (backpressure); the record is handed back for the caller to
    /// retry, shed, or block on.
    BufferFull {
        /// The partition that back-pressured.
        partition: usize,
    },
    /// The scorer returned fewer scores than windows submitted.
    ShortScoreBatch {
        /// Windows submitted.
        expected: usize,
        /// Scores returned.
        got: usize,
    },
    /// The scorer produced a non-finite or out-of-range probability.
    CorruptScore(f32),
    /// The scorer transiently failed; the call may be retried.
    ScorerUnavailable,
    /// The model-tier deadline elapsed before a valid score batch.
    DeadlineExceeded,
    /// The durable transport could not append the record to its
    /// write-ahead log (I/O failure or an injected transient); the
    /// record was *not* made durable and is handed back for retry.
    WalAppend {
        /// The partition whose log refused the append.
        partition: usize,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::BufferClosed { partition } => {
                write!(
                    f,
                    "log buffer partition {partition} closed: consumer dropped"
                )
            }
            PipelineError::BufferFull { partition } => {
                write!(f, "log buffer partition {partition} full: backpressure")
            }
            PipelineError::ShortScoreBatch { expected, got } => {
                write!(f, "scorer returned {got} scores for {expected} windows")
            }
            PipelineError::CorruptScore(v) => {
                write!(f, "scorer produced invalid probability {v}")
            }
            PipelineError::ScorerUnavailable => write!(f, "scorer transiently unavailable"),
            PipelineError::DeadlineExceeded => write!(f, "model-tier deadline exceeded"),
            PipelineError::WalAppend { partition } => {
                write!(f, "write-ahead log append failed for partition {partition}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl PipelineError {
    /// True for failures worth retrying (transient by construction).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            PipelineError::ScorerUnavailable
                | PipelineError::ShortScoreBatch { .. }
                | PipelineError::CorruptScore(_)
                | PipelineError::BufferFull { .. }
                | PipelineError::WalAppend { .. }
        )
    }
}

/// A window that exhausted its retry budget and was quarantined instead
/// of processed — enough context for an operator to replay it offline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadLetter {
    /// Originating system.
    pub system: String,
    /// First log timestamp in the window.
    pub start_timestamp: u64,
    /// Last log timestamp in the window.
    pub end_timestamp: u64,
    /// Ingestion sequence number of the window's first log.
    pub first_seq_no: u64,
    /// Why the window was quarantined.
    pub reason: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification() {
        assert!(PipelineError::ScorerUnavailable.is_transient());
        assert!(PipelineError::CorruptScore(f32::NAN).is_transient());
        assert!(PipelineError::ShortScoreBatch {
            expected: 4,
            got: 2
        }
        .is_transient());
        assert!(!PipelineError::BufferClosed { partition: 0 }.is_transient());
        assert!(PipelineError::BufferFull { partition: 3 }.is_transient());
        assert!(PipelineError::WalAppend { partition: 1 }.is_transient());
        assert!(!PipelineError::DeadlineExceeded.is_transient());
    }

    #[test]
    fn display_is_operator_readable() {
        let e = PipelineError::ShortScoreBatch {
            expected: 8,
            got: 3,
        };
        assert_eq!(e.to_string(), "scorer returned 3 scores for 8 windows");
    }
}
