//! Durable log transport: a segmented write-ahead log between ingest and
//! the partitioned buffer, with exactly-once crash recovery.
//!
//! In the default (in-memory) pipeline, a record acknowledged to the
//! producer lives only in a channel; a process kill loses everything
//! queued and every half-filled window. Durable mode interposes one
//! [`PartitionWal`] per buffer partition:
//!
//! ```text
//!   producer ──▶ WAL append + flush ──▶ buffer partition ──▶ worker
//!                      │                                       │
//!                      └── seg-XXXX.wal          cursor.log ◀──┘ commit
//! ```
//!
//! - **Append before ack**: [`DurableProducer`] appends and flushes the
//!   record to the partition's segment file *before* enqueuing it, under
//!   one per-partition lock — so WAL order is exactly buffer order, and
//!   an acknowledged record survives a process kill.
//! - **Commit after account**: each detection worker commits a
//!   [`CursorState`] to its partition's cursor log after every batch —
//!   the next sequence number, the window assembler's fill, the six-tier
//!   verdict counters, and the reports delivered so far.
//! - **Replay on restart**: [`start_durable`] recovers each partition,
//!   re-primes the window assembler with the records the cursor says
//!   were buffered (context — *not* re-counted), and replays every
//!   unacked record through the buffer before any live traffic, with the
//!   counters restored from the cursor. The six-bucket accounting
//!   invariant (`pattern + cache + model + degraded + shed + quarantined
//!   == windows`) therefore holds *across* the crash, and re-delivered
//!   reports are exactly the suffix after the last committed cursor —
//!   deduplicating on `(system, first_seq_no)` yields exactly-once
//!   delivery end to end.
//!
//! Durability is against process death (`SIGKILL` mid-stream): appends
//! are flushed to the OS before the ack, not `fsync`ed per record — an
//! OS crash can lose the tail the page cache still held. See
//! `docs/wal.md` for the format, the recovery state machine, and the
//! retention knobs.

use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

use logsynergy::wal::{CursorFile, CursorState, PartitionWal, WalConfig, WalError};
use logsynergy_telemetry as telemetry;
use parking_lot::Mutex;

use crate::buffer::{LogBuffer, Producer};
use crate::detect::SequenceScorer;
use crate::error::PipelineError;
use crate::record::{format_log, RawLog, StructuredLog};
use crate::report::ReportSink;
use crate::service::{DetectionPool, PipelineConfig};
use crate::vectorizer::EventVectorizer;

/// Where and how the pipeline keeps its write-ahead log. Stored in
/// [`PipelineConfig::wal`]; `None` keeps the classic in-memory path.
#[derive(Clone, Debug)]
pub struct WalOptions {
    /// Root directory; each partition owns the subdirectory `p{index}`.
    pub dir: PathBuf,
    /// Roll to a new segment file past this size.
    pub segment_max_bytes: u64,
    /// Roll to a new segment file past this age (checked on append).
    pub segment_max_age: Duration,
    /// Fully-acked segments kept behind the commit horizon before
    /// retirement (history for replay tooling).
    pub retain_segments: usize,
}

impl WalOptions {
    /// Durable mode rooted at `dir`, with the default segment knobs.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        let defaults = WalConfig::default();
        WalOptions {
            dir: dir.into(),
            segment_max_bytes: defaults.segment_max_bytes,
            segment_max_age: defaults.segment_max_age,
            retain_segments: defaults.retain_segments,
        }
    }

    /// The per-partition appender configuration these options describe.
    pub fn wal_config(&self) -> WalConfig {
        WalConfig {
            segment_max_bytes: self.segment_max_bytes,
            segment_max_age: self.segment_max_age,
            retain_segments: self.retain_segments,
        }
    }

    /// The directory holding partition `p`'s segments and cursor log.
    pub fn partition_dir(&self, partition: usize) -> PathBuf {
        self.dir.join(format!("p{partition}"))
    }
}

/// Everything a detection worker needs to run durably: the recovered
/// cursor, the window-assembler context to re-prime, the cursor-log
/// committer, and the shared ack horizon retention reads.
pub(crate) struct DurableWorkerInit {
    pub(crate) cursor: CursorState,
    pub(crate) context: Vec<StructuredLog>,
    pub(crate) committer: CursorFile,
    pub(crate) ack_horizon: Arc<AtomicU64>,
}

/// The producing side of durable mode: appends to the partition's WAL
/// (flushing before the ack), then enqueues into the buffer — both under
/// one per-partition lock, so WAL order is exactly buffer order and the
/// sequence numbers workers assign by arrival match the WAL's.
pub struct DurableProducer {
    inner: Producer,
    parts: Arc<Vec<Mutex<PartitionWal>>>,
    capacity: usize,
}

impl DurableProducer {
    /// Number of partitions behind this producer.
    pub fn partitions(&self) -> usize {
        self.inner.partitions()
    }

    /// The partition a system key routes to.
    pub fn partition_for(&self, system: &str) -> usize {
        self.inner.partition_for(system)
    }

    /// Logs currently queued in `partition` (telemetry-grade).
    pub fn depth(&self, partition: usize) -> u64 {
        self.inner.depth(partition)
    }

    /// Durable blocking send, partition chosen by the system key.
    pub fn send(&self, log: RawLog) -> Result<(), (RawLog, PipelineError)> {
        let p = self.inner.partition_for(&log.system);
        self.send_to(p, log)
    }

    /// Durable blocking send to a caller-chosen partition: the record is
    /// appended and flushed to the partition's WAL, then enqueued. An
    /// append failure hands the record back as a transient
    /// [`PipelineError::WalAppend`] — nothing was made durable. A closed
    /// buffer after a successful append returns `Ok`: the record is
    /// parked in the log and will be replayed on the next start.
    pub fn send_to(&self, partition: usize, log: RawLog) -> Result<(), (RawLog, PipelineError)> {
        let mut wal = self.parts[partition].lock();
        self.append_and_enqueue(&mut wal, partition, log)
    }

    /// Durable send with a backpressure check *before* the append: a
    /// partition already holding `partition_capacity` queued records
    /// refuses with [`PipelineError::BufferFull`] (the record untouched,
    /// free to shed), because once appended a record is acked-durable
    /// and can no longer be refused.
    ///
    /// The depth check happens under the partition lock — every durable
    /// enqueue holds it, so concurrent offers serialize on the check and
    /// cannot all pass the watermark and then stack up blocking on a
    /// full shard (workers draining concurrently only free space).
    pub fn offer_to(&self, partition: usize, log: RawLog) -> Result<(), (RawLog, PipelineError)> {
        let mut wal = self.parts[partition].lock();
        if self.inner.depth(partition) >= self.capacity as u64 {
            return Err((log, PipelineError::BufferFull { partition }));
        }
        self.append_and_enqueue(&mut wal, partition, log)
    }

    fn append_and_enqueue(
        &self,
        wal: &mut PartitionWal,
        partition: usize,
        log: RawLog,
    ) -> Result<(), (RawLog, PipelineError)> {
        if wal
            .append(&log.system, log.timestamp, &log.message)
            .is_err()
        {
            return Err((log, PipelineError::WalAppend { partition }));
        }
        // Appended and flushed: the record is durable and *must* reach
        // the buffer in append order (worker sequence numbers follow
        // arrival). The send stays under the partition lock; a closed
        // buffer parks the record for replay instead of failing the ack.
        let _ = self.inner.send_to(partition, log);
        Ok(())
    }
}

/// A durable pipeline, started: the detection pool (join it for the
/// summary), the producing handle, and how many unacked records the
/// start replayed from the log before accepting live traffic.
pub struct DurablePipeline {
    /// The per-partition detection workers, committing cursors as they
    /// account batches.
    pub pool: DetectionPool,
    /// The WAL-backed producer handle. Dropping it (and any clones of
    /// the replay path's internal handle) ends the stream.
    pub producer: DurableProducer,
    /// Unacked records replayed from the log at start.
    pub replayed: u64,
}

/// Opens (or recovers) the write-ahead log under
/// [`PipelineConfig::wal`], spawns the detection pool with durable
/// cursor commits, replays every unacked record in order, and returns
/// the producing handle. Requires `config.wal` to be set.
///
/// Recovery is exactly-once with respect to window accounting: records
/// the last committed cursor covered are either skipped (fully
/// accounted) or re-primed as assembler context (buffered, not yet
/// windowed — not re-counted); records past the cursor are re-processed
/// with their original sequence numbers.
pub fn start_durable<S, K>(
    vectorizer: EventVectorizer,
    scorer: S,
    sink: K,
    config: &PipelineConfig,
) -> Result<DurablePipeline, WalError>
where
    S: SequenceScorer + Clone + 'static,
    K: ReportSink + Clone + 'static,
{
    let opts = config
        .wal
        .as_ref()
        .expect("start_durable requires PipelineConfig::wal");
    let tele = telemetry::global().scoped("wal");
    let c_replayed = tele.counter("replayed");

    let mut parts = Vec::with_capacity(config.partitions);
    let mut inits = Vec::with_capacity(config.partitions);
    let mut replays = Vec::with_capacity(config.partitions);
    for p in 0..config.partitions {
        let dir = opts.partition_dir(p);
        std::fs::create_dir_all(&dir).map_err(WalError::from)?;
        let (wal, recovered) = PartitionWal::open(&dir, opts.wal_config())?;
        let committer = CursorFile::open(&dir)?;
        let context = recovered
            .context
            .iter()
            .map(|rec| structured(&rec.system, rec.timestamp, &rec.message, rec.seq))
            .collect();
        inits.push(DurableWorkerInit {
            cursor: recovered.cursor,
            context,
            committer,
            ack_horizon: wal.ack_horizon(),
        });
        replays.push(recovered.replay);
        parts.push(Mutex::new(wal));
    }

    let buffer = LogBuffer::new(config.partitions, config.partition_capacity);
    let pool = DetectionPool::spawn_durable(&buffer, vectorizer, scorer, sink, config, inits);
    let inner = buffer.producer();
    drop(buffer); // `inner` is now the only sender

    // Replay unacked records into the buffer *before* handing out the
    // producer: the workers are live and draining, so blocking sends
    // make progress even past the partition capacity, and every replayed
    // record precedes any live one — preserving WAL order end to end.
    let mut replayed = 0u64;
    for (p, records) in replays.into_iter().enumerate() {
        for rec in records {
            let raw = RawLog {
                system: rec.system,
                timestamp: rec.timestamp,
                message: rec.message,
            };
            // A worker that dies mid-replay closes the shard; the rest
            // of the records stay parked in the log for the next start.
            if inner.send_to(p, raw).is_err() {
                break;
            }
            replayed += 1;
        }
    }
    c_replayed.add(replayed);

    Ok(DurablePipeline {
        pool,
        producer: DurableProducer {
            inner,
            parts: Arc::new(parts),
            capacity: config.partition_capacity,
        },
        replayed,
    })
}

/// Rebuilds the [`StructuredLog`] a WAL record was (or will be) assigned
/// by its worker: same normalization, same sequence number.
fn structured(system: &str, timestamp: u64, message: &str, seq: u64) -> StructuredLog {
    let raw = RawLog {
        system: system.to_string(),
        timestamp,
        message: message.to_string(),
    };
    format_log(&raw, seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logsynergy::wal::recover_partition;
    use std::path::Path;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lswal-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn options_round_trip_the_wal_config() {
        let opts = WalOptions {
            segment_max_bytes: 512,
            segment_max_age: Duration::from_secs(7),
            retain_segments: 5,
            ..WalOptions::at("/tmp/x")
        };
        let cfg = opts.wal_config();
        assert_eq!(cfg.segment_max_bytes, 512);
        assert_eq!(cfg.segment_max_age, Duration::from_secs(7));
        assert_eq!(cfg.retain_segments, 5);
        assert_eq!(opts.partition_dir(3), Path::new("/tmp/x/p3"));
    }

    #[test]
    fn producer_appends_before_enqueue_and_parks_on_closed_buffer() {
        let dir = scratch("park");
        std::fs::create_dir_all(dir.join("p0")).unwrap();
        let (wal, _) = PartitionWal::open(&dir.join("p0"), WalConfig::default()).unwrap();
        let buffer = LogBuffer::new(1, 4);
        let producer = DurableProducer {
            inner: buffer.producer(),
            parts: Arc::new(vec![Mutex::new(wal)]),
            capacity: 4,
        };
        let mut consumer = buffer.partition_consumer(0);
        drop(buffer);
        let log = RawLog {
            system: "web".into(),
            timestamp: 1,
            message: "hello".into(),
        };
        producer.send(log.clone()).unwrap();
        let got = consumer
            .recv_batch(8, Duration::from_millis(50))
            .expect("record must be enqueued");
        assert_eq!(got.len(), 1);
        // Close the buffer: the append still succeeds (the ack is the
        // WAL), and the record is parked for replay.
        drop(consumer);
        producer.send(log).unwrap();
        drop(producer);
        let r = recover_partition(&dir.join("p0")).unwrap();
        assert_eq!(r.replay.len(), 2, "both records are durable");
        assert_eq!(r.replay[1].seq, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn offer_refuses_before_appending_when_the_shard_is_full() {
        let dir = scratch("offer");
        std::fs::create_dir_all(dir.join("p0")).unwrap();
        let (wal, _) = PartitionWal::open(&dir.join("p0"), WalConfig::default()).unwrap();
        let buffer = LogBuffer::new(1, 2);
        let producer = DurableProducer {
            inner: buffer.producer(),
            parts: Arc::new(vec![Mutex::new(wal)]),
            capacity: 2,
        };
        let log = |i: u64| RawLog {
            system: "web".into(),
            timestamp: i,
            message: format!("m{i}"),
        };
        producer.offer_to(0, log(0)).unwrap();
        producer.offer_to(0, log(1)).unwrap();
        let (rejected, err) = producer.offer_to(0, log(2)).unwrap_err();
        assert_eq!(err, PipelineError::BufferFull { partition: 0 });
        assert_eq!(rejected.timestamp, 2);
        drop(producer);
        let r = recover_partition(&dir.join("p0")).unwrap();
        assert_eq!(r.replay.len(), 2, "the refused record was never appended");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
