//! Durable log transport: a segmented write-ahead log between ingest and
//! the partitioned buffer, with exactly-once crash recovery.
//!
//! In the default (in-memory) pipeline, a record acknowledged to the
//! producer lives only in a channel; a process kill loses everything
//! queued and every half-filled window. Durable mode interposes one
//! [`PartitionWal`] per buffer partition:
//!
//! ```text
//!   producer ──▶ WAL append + flush ──▶ buffer partition ──▶ worker
//!                      │                                       │
//!                      └── seg-XXXX.wal          cursor.log ◀──┘ commit
//! ```
//!
//! - **Append before ack**: [`DurableProducer`] appends and flushes the
//!   record to the partition's segment file *before* enqueuing it, under
//!   one per-partition lock — so WAL order is exactly buffer order, and
//!   an acknowledged record survives a process kill.
//! - **Commit after account**: each detection worker commits a
//!   [`CursorState`] to its partition's cursor log after every batch —
//!   the next sequence number, the window assembler's fill, the six-tier
//!   verdict counters, and the reports delivered so far.
//! - **Replay on restart**: [`start_durable`] recovers each partition,
//!   re-primes the window assembler with the records the cursor says
//!   were buffered (context — *not* re-counted), and replays every
//!   unacked record through the buffer before any live traffic, with the
//!   counters restored from the cursor. The six-bucket accounting
//!   invariant (`pattern + cache + model + degraded + shed + quarantined
//!   == windows`) therefore holds *across* the crash, and re-delivered
//!   reports are exactly the suffix after the last committed cursor —
//!   deduplicating on `(system, first_seq_no)` yields exactly-once
//!   delivery end to end.
//!
//! Durability is against process death (`SIGKILL` mid-stream): appends
//! are flushed to the OS before the ack, not `fsync`ed per record — an
//! OS crash can lose the tail the page cache still held. See
//! `docs/wal.md` for the format, the recovery state machine, and the
//! retention knobs.

use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

use logsynergy::wal::{CursorFile, CursorState, PartitionWal, WalConfig, WalError};
use logsynergy_telemetry as telemetry;
use parking_lot::Mutex;

use crate::buffer::{LogBuffer, Producer};
use crate::detect::SequenceScorer;
use crate::error::PipelineError;
use crate::record::{format_log, RawLog, StructuredLog};
use crate::report::ReportSink;
use crate::service::{DetectionPool, PipelineConfig};
use crate::vectorizer::EventVectorizer;

/// Where and how the pipeline keeps its write-ahead log. Stored in
/// [`PipelineConfig::wal`]; `None` keeps the classic in-memory path.
#[derive(Clone, Debug)]
pub struct WalOptions {
    /// Root directory; each partition owns the subdirectory `p{index}`.
    pub dir: PathBuf,
    /// Roll to a new segment file past this size.
    pub segment_max_bytes: u64,
    /// Roll to a new segment file past this age (checked on append).
    pub segment_max_age: Duration,
    /// Fully-acked segments kept behind the commit horizon before
    /// retirement (history for replay tooling).
    pub retain_segments: usize,
}

impl WalOptions {
    /// Durable mode rooted at `dir`, with the default segment knobs.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        let defaults = WalConfig::default();
        WalOptions {
            dir: dir.into(),
            segment_max_bytes: defaults.segment_max_bytes,
            segment_max_age: defaults.segment_max_age,
            retain_segments: defaults.retain_segments,
        }
    }

    /// The per-partition appender configuration these options describe.
    pub fn wal_config(&self) -> WalConfig {
        WalConfig {
            segment_max_bytes: self.segment_max_bytes,
            segment_max_age: self.segment_max_age,
            retain_segments: self.retain_segments,
        }
    }

    /// The directory holding partition `p`'s segments and cursor log.
    pub fn partition_dir(&self, partition: usize) -> PathBuf {
        self.dir.join(format!("p{partition}"))
    }
}

/// Everything a detection worker needs to run durably: the recovered
/// cursor, the window-assembler context to re-prime, the cursor-log
/// committer, and the shared ack horizon retention reads.
pub(crate) struct DurableWorkerInit {
    pub(crate) cursor: CursorState,
    pub(crate) context: Vec<StructuredLog>,
    pub(crate) committer: CursorFile,
    pub(crate) ack_horizon: Arc<AtomicU64>,
}

/// The producing side of durable mode: appends to the partition's WAL
/// (flushing before the ack), then enqueues into the buffer — both under
/// one per-partition lock, so WAL order is exactly buffer order and the
/// sequence numbers workers assign by arrival match the WAL's.
pub struct DurableProducer {
    inner: Producer,
    parts: Arc<Vec<Mutex<PartitionWal>>>,
    capacity: usize,
}

impl DurableProducer {
    /// Number of partitions behind this producer.
    pub fn partitions(&self) -> usize {
        self.inner.partitions()
    }

    /// The partition a system key routes to.
    pub fn partition_for(&self, system: &str) -> usize {
        self.inner.partition_for(system)
    }

    /// Logs currently queued in `partition` (telemetry-grade).
    pub fn depth(&self, partition: usize) -> u64 {
        self.inner.depth(partition)
    }

    /// Durable blocking send, partition chosen by the system key.
    pub fn send(&self, log: RawLog) -> Result<(), (RawLog, PipelineError)> {
        let p = self.inner.partition_for(&log.system);
        self.send_to(p, log)
    }

    /// Durable blocking send to a caller-chosen partition: the record is
    /// appended and flushed to the partition's WAL, then enqueued. An
    /// append failure hands the record back as a transient
    /// [`PipelineError::WalAppend`] — nothing was made durable. A closed
    /// buffer after a successful append returns `Ok`: the record is
    /// parked in the log and will be replayed on the next start.
    pub fn send_to(&self, partition: usize, log: RawLog) -> Result<(), (RawLog, PipelineError)> {
        let mut wal = self.parts[partition].lock();
        self.append_and_enqueue(&mut wal, partition, log)
    }

    /// Durable send with a backpressure check *before* the append: a
    /// partition already holding `partition_capacity` queued records
    /// refuses with [`PipelineError::BufferFull`] (the record untouched,
    /// free to shed), because once appended a record is acked-durable
    /// and can no longer be refused.
    ///
    /// The depth check happens under the partition lock — every durable
    /// enqueue holds it, so concurrent offers serialize on the check and
    /// cannot all pass the watermark and then stack up blocking on a
    /// full shard (workers draining concurrently only free space).
    pub fn offer_to(&self, partition: usize, log: RawLog) -> Result<(), (RawLog, PipelineError)> {
        let mut wal = self.parts[partition].lock();
        if self.inner.depth(partition) >= self.capacity as u64 {
            return Err((log, PipelineError::BufferFull { partition }));
        }
        self.append_and_enqueue(&mut wal, partition, log)
    }

    /// Durable blocking group commit: the whole batch is appended with
    /// one [`PartitionWal::append_batch`] (one write+flush per segment
    /// touched, not one per record) and enqueued, all under a single
    /// partition-lock acquisition. Returns the number of records made
    /// durable — the full batch on `Ok`.
    ///
    /// On a mid-batch append failure the durably-flushed prefix is
    /// *still enqueued* (WAL order must equal buffer order — workers
    /// assign sequence numbers by arrival, so skipping a durable record
    /// would desynchronize every seq after it) and the unwritten suffix
    /// is handed back with a retryable
    /// [`PipelineError::WalAppend`] — retrying it re-assigns the same
    /// sequence numbers. As with [`DurableProducer::send_to`], a closed
    /// buffer after a successful append is `Ok`: the records are parked
    /// in the log and replayed on the next start.
    pub fn send_batch(
        &self,
        partition: usize,
        logs: Vec<RawLog>,
    ) -> Result<usize, (Vec<RawLog>, PipelineError)> {
        if logs.is_empty() {
            return Ok(0);
        }
        let mut wal = self.parts[partition].lock();
        self.append_and_enqueue_batch(&mut wal, partition, logs)
    }

    /// [`DurableProducer::send_batch`] with the backpressure check of
    /// [`DurableProducer::offer_to`], still under one lock acquisition:
    /// the queue depth is read while holding the partition lock (every
    /// durable enqueue holds it, so concurrent offers serialize on the
    /// check), and only the records that fit under
    /// `partition_capacity` are appended — a refused record was never
    /// made durable and is free to shed. `Err` hands back the untouched
    /// suffix: on [`PipelineError::BufferFull`] the accepted prefix
    /// (`batch_len - suffix_len`) is durable and enqueued; on
    /// [`PipelineError::WalAppend`] likewise, with the suffix free to
    /// retry.
    pub fn offer_batch(
        &self,
        partition: usize,
        mut logs: Vec<RawLog>,
    ) -> Result<usize, (Vec<RawLog>, PipelineError)> {
        if logs.is_empty() {
            return Ok(0);
        }
        let mut wal = self.parts[partition].lock();
        let depth = self.inner.depth(partition);
        let room = (self.capacity as u64).saturating_sub(depth) as usize;
        if room == 0 {
            return Err((logs, PipelineError::BufferFull { partition }));
        }
        if room >= logs.len() {
            return self.append_and_enqueue_batch(&mut wal, partition, logs);
        }
        let overflow = logs.split_off(room);
        match self.append_and_enqueue_batch(&mut wal, partition, logs) {
            Ok(_) => Err((overflow, PipelineError::BufferFull { partition })),
            Err((mut unappended, e)) => {
                unappended.extend(overflow);
                Err((unappended, e))
            }
        }
    }

    fn append_and_enqueue_batch(
        &self,
        wal: &mut PartitionWal,
        partition: usize,
        mut logs: Vec<RawLog>,
    ) -> Result<usize, (Vec<RawLog>, PipelineError)> {
        let entries: Vec<(&str, u64, &str)> = logs
            .iter()
            .map(|l| (l.system.as_str(), l.timestamp, l.message.as_str()))
            .collect();
        let start = wal.next_seq();
        let failed = wal.append_batch(&entries).is_err();
        // On failure the WAL advanced `next_seq` only past the chunks it
        // durably flushed; that prefix must be enqueued regardless.
        let landed = (wal.next_seq() - start) as usize;
        drop(entries);
        let suffix = logs.split_off(landed);
        // A closed buffer is fine: the records are durable — parked in
        // the log for replay on the next start — and the ack is the WAL.
        let _ = self.inner.send_many_to(partition, logs);
        if failed {
            Err((suffix, PipelineError::WalAppend { partition }))
        } else {
            Ok(landed)
        }
    }

    fn append_and_enqueue(
        &self,
        wal: &mut PartitionWal,
        partition: usize,
        log: RawLog,
    ) -> Result<(), (RawLog, PipelineError)> {
        if wal
            .append(&log.system, log.timestamp, &log.message)
            .is_err()
        {
            return Err((log, PipelineError::WalAppend { partition }));
        }
        // Appended and flushed: the record is durable and *must* reach
        // the buffer in append order (worker sequence numbers follow
        // arrival). The send stays under the partition lock; a closed
        // buffer parks the record for replay instead of failing the ack.
        let _ = self.inner.send_to(partition, log);
        Ok(())
    }
}

/// A durable pipeline, started: the detection pool (join it for the
/// summary), the producing handle, and how many unacked records the
/// start replayed from the log before accepting live traffic.
pub struct DurablePipeline {
    /// The per-partition detection workers, committing cursors as they
    /// account batches.
    pub pool: DetectionPool,
    /// The WAL-backed producer handle. Dropping it (and any clones of
    /// the replay path's internal handle) ends the stream.
    pub producer: DurableProducer,
    /// Unacked records replayed from the log at start.
    pub replayed: u64,
}

/// Opens (or recovers) the write-ahead log under
/// [`PipelineConfig::wal`], spawns the detection pool with durable
/// cursor commits, replays every unacked record in order, and returns
/// the producing handle. Requires `config.wal` to be set.
///
/// Recovery is exactly-once with respect to window accounting: records
/// the last committed cursor covered are either skipped (fully
/// accounted) or re-primed as assembler context (buffered, not yet
/// windowed — not re-counted); records past the cursor are re-processed
/// with their original sequence numbers.
pub fn start_durable<S, K>(
    vectorizer: EventVectorizer,
    scorer: S,
    sink: K,
    config: &PipelineConfig,
) -> Result<DurablePipeline, WalError>
where
    S: SequenceScorer + Clone + 'static,
    K: ReportSink + Clone + 'static,
{
    let opts = config
        .wal
        .as_ref()
        .expect("start_durable requires PipelineConfig::wal");
    let tele = telemetry::global().scoped("wal");
    let c_replayed = tele.counter("replayed");

    let mut parts = Vec::with_capacity(config.partitions);
    let mut inits = Vec::with_capacity(config.partitions);
    let mut replays = Vec::with_capacity(config.partitions);
    for p in 0..config.partitions {
        let dir = opts.partition_dir(p);
        std::fs::create_dir_all(&dir).map_err(WalError::from)?;
        let (wal, recovered) = PartitionWal::open(&dir, opts.wal_config())?;
        let committer = CursorFile::open(&dir)?;
        let context = recovered
            .context
            .iter()
            .map(|rec| structured(&rec.system, rec.timestamp, &rec.message, rec.seq))
            .collect();
        inits.push(DurableWorkerInit {
            cursor: recovered.cursor,
            context,
            committer,
            ack_horizon: wal.ack_horizon(),
        });
        replays.push(recovered.replay);
        parts.push(Mutex::new(wal));
    }

    let buffer = LogBuffer::new(config.partitions, config.partition_capacity);
    let pool = DetectionPool::spawn_durable(&buffer, vectorizer, scorer, sink, config, inits);
    let inner = buffer.producer();
    drop(buffer); // `inner` is now the only sender

    // Replay unacked records into the buffer *before* handing out the
    // producer: the workers are live and draining, so blocking sends
    // make progress even past the partition capacity, and every replayed
    // record precedes any live one — preserving WAL order end to end.
    let mut replayed = 0u64;
    for (p, records) in replays.into_iter().enumerate() {
        for rec in records {
            let raw = RawLog {
                system: rec.system,
                timestamp: rec.timestamp,
                message: rec.message,
            };
            // A worker that dies mid-replay closes the shard; the rest
            // of the records stay parked in the log for the next start.
            if inner.send_to(p, raw).is_err() {
                break;
            }
            replayed += 1;
        }
    }
    c_replayed.add(replayed);

    Ok(DurablePipeline {
        pool,
        producer: DurableProducer {
            inner,
            parts: Arc::new(parts),
            capacity: config.partition_capacity,
        },
        replayed,
    })
}

/// Rebuilds the [`StructuredLog`] a WAL record was (or will be) assigned
/// by its worker: same normalization, same sequence number.
fn structured(system: &str, timestamp: u64, message: &str, seq: u64) -> StructuredLog {
    let raw = RawLog {
        system: system.to_string(),
        timestamp,
        message: message.to_string(),
    };
    format_log(&raw, seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logsynergy::wal::recover_partition;
    use std::path::Path;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lswal-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn options_round_trip_the_wal_config() {
        let opts = WalOptions {
            segment_max_bytes: 512,
            segment_max_age: Duration::from_secs(7),
            retain_segments: 5,
            ..WalOptions::at("/tmp/x")
        };
        let cfg = opts.wal_config();
        assert_eq!(cfg.segment_max_bytes, 512);
        assert_eq!(cfg.segment_max_age, Duration::from_secs(7));
        assert_eq!(cfg.retain_segments, 5);
        assert_eq!(opts.partition_dir(3), Path::new("/tmp/x/p3"));
    }

    #[test]
    fn producer_appends_before_enqueue_and_parks_on_closed_buffer() {
        let dir = scratch("park");
        std::fs::create_dir_all(dir.join("p0")).unwrap();
        let (wal, _) = PartitionWal::open(&dir.join("p0"), WalConfig::default()).unwrap();
        let buffer = LogBuffer::new(1, 4);
        let producer = DurableProducer {
            inner: buffer.producer(),
            parts: Arc::new(vec![Mutex::new(wal)]),
            capacity: 4,
        };
        let mut consumer = buffer.partition_consumer(0);
        drop(buffer);
        let log = RawLog {
            system: "web".into(),
            timestamp: 1,
            message: "hello".into(),
        };
        producer.send(log.clone()).unwrap();
        let got = consumer
            .recv_batch(8, Duration::from_millis(50))
            .expect("record must be enqueued");
        assert_eq!(got.len(), 1);
        // Close the buffer: the append still succeeds (the ack is the
        // WAL), and the record is parked for replay.
        drop(consumer);
        producer.send(log).unwrap();
        drop(producer);
        let r = recover_partition(&dir.join("p0")).unwrap();
        assert_eq!(r.replay.len(), 2, "both records are durable");
        assert_eq!(r.replay[1].seq, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn offer_refuses_before_appending_when_the_shard_is_full() {
        let dir = scratch("offer");
        std::fs::create_dir_all(dir.join("p0")).unwrap();
        let (wal, _) = PartitionWal::open(&dir.join("p0"), WalConfig::default()).unwrap();
        let buffer = LogBuffer::new(1, 2);
        let producer = DurableProducer {
            inner: buffer.producer(),
            parts: Arc::new(vec![Mutex::new(wal)]),
            capacity: 2,
        };
        let log = |i: u64| RawLog {
            system: "web".into(),
            timestamp: i,
            message: format!("m{i}"),
        };
        producer.offer_to(0, log(0)).unwrap();
        producer.offer_to(0, log(1)).unwrap();
        let (rejected, err) = producer.offer_to(0, log(2)).unwrap_err();
        assert_eq!(err, PipelineError::BufferFull { partition: 0 });
        assert_eq!(rejected.timestamp, 2);
        drop(producer);
        let r = recover_partition(&dir.join("p0")).unwrap();
        assert_eq!(r.replay.len(), 2, "the refused record was never appended");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn send_batch_preserves_buffer_order_and_durability() {
        let dir = scratch("sendbatch");
        std::fs::create_dir_all(dir.join("p0")).unwrap();
        let (wal, _) = PartitionWal::open(&dir.join("p0"), WalConfig::default()).unwrap();
        let buffer = LogBuffer::new(1, 64);
        let producer = DurableProducer {
            inner: buffer.producer(),
            parts: Arc::new(vec![Mutex::new(wal)]),
            capacity: 64,
        };
        let mut consumer = buffer.partition_consumer(0);
        drop(buffer);
        let logs: Vec<RawLog> = (0..10)
            .map(|i| RawLog {
                system: "web".into(),
                timestamp: i,
                message: format!("m{i}"),
            })
            .collect();
        assert_eq!(producer.send_batch(0, logs).unwrap(), 10);
        let got = consumer
            .recv_batch(32, Duration::from_millis(50))
            .expect("batch must be enqueued");
        assert_eq!(got.len(), 10);
        for (i, log) in got.iter().enumerate() {
            assert_eq!(log.timestamp, i as u64, "buffer order == batch order");
        }
        drop(consumer);
        drop(producer);
        let r = recover_partition(&dir.join("p0")).unwrap();
        assert_eq!(r.replay.len(), 10, "every record in the batch is durable");
        for (i, rec) in r.replay.iter().enumerate() {
            assert_eq!(rec.seq, i as u64, "WAL order == batch order");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn offer_batch_accepts_the_fitting_prefix_and_returns_the_rest() {
        let dir = scratch("offerbatch");
        std::fs::create_dir_all(dir.join("p0")).unwrap();
        let (wal, _) = PartitionWal::open(&dir.join("p0"), WalConfig::default()).unwrap();
        let buffer = LogBuffer::new(1, 4);
        let producer = DurableProducer {
            inner: buffer.producer(),
            parts: Arc::new(vec![Mutex::new(wal)]),
            capacity: 4,
        };
        let _consumer = buffer.partition_consumer(0);
        drop(buffer);
        let logs = |range: std::ops::Range<u64>| -> Vec<RawLog> {
            range
                .map(|i| RawLog {
                    system: "web".into(),
                    timestamp: i,
                    message: format!("m{i}"),
                })
                .collect()
        };
        // 6 offered into a 4-deep shard: 4 land, 2 come back untouched.
        let (rest, err) = producer.offer_batch(0, logs(0..6)).unwrap_err();
        assert_eq!(err, PipelineError::BufferFull { partition: 0 });
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].timestamp, 4, "the suffix is handed back in order");
        assert_eq!(rest[1].timestamp, 5);
        // Shard now full: the whole batch bounces, nothing is appended.
        let (rest, err) = producer.offer_batch(0, logs(6..8)).unwrap_err();
        assert_eq!(err, PipelineError::BufferFull { partition: 0 });
        assert_eq!(rest.len(), 2);
        drop(producer);
        let r = recover_partition(&dir.join("p0")).unwrap();
        assert_eq!(r.replay.len(), 4, "only the accepted prefix is durable");
        assert_eq!(r.replay.last().unwrap().seq, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
