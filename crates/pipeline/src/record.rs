//! Log records as they move through the deployment pipeline (Fig. 7).

/// A raw log line as shipped by the collector (Filebeat stage).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawLog {
    /// Originating system identifier (host/service tag).
    pub system: String,
    /// Unix timestamp (seconds).
    pub timestamp: u64,
    /// The unparsed message.
    pub message: String,
}

/// A log after the formatting stage (Logstash): unified structure plus an
/// ingestion sequence number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructuredLog {
    /// Originating system.
    pub system: String,
    /// Unix timestamp (seconds).
    pub timestamp: u64,
    /// Normalized message (whitespace collapsed, trimmed).
    pub message: String,
    /// Monotone ingestion sequence number assigned by the formatter.
    pub seq_no: u64,
}

/// Normalizes a raw log into the unified structure (the Logstash step:
/// "formatted into a unified structure by LogStash", §VI-A).
///
/// Takes the raw record by reference so a serving worker can keep the
/// raw batch alive and re-format it when a faulted attempt is retried —
/// replays produce identical structured logs for the same `seq_no`.
pub fn format_log(raw: &RawLog, seq_no: u64) -> StructuredLog {
    let message = raw.message.split_whitespace().collect::<Vec<_>>().join(" ");
    StructuredLog {
        system: raw.system.clone(),
        timestamp: raw.timestamp,
        message,
        seq_no,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_collapses_whitespace() {
        let raw = RawLog {
            system: "sysb".into(),
            timestamp: 7,
            message: "  a   b\t c  ".into(),
        };
        let s = format_log(&raw, 42);
        assert_eq!(s.message, "a b c");
        assert_eq!(s.seq_no, 42);
        assert_eq!(s.timestamp, 7);
    }

    #[test]
    fn reformatting_is_idempotent_per_seq_no() {
        // The retry path re-formats the same raw batch; both passes must
        // produce identical structured records.
        let raw = RawLog {
            system: "sysb".into(),
            timestamp: 9,
            message: "\t disk   fault \u{0}".into(),
        };
        assert_eq!(format_log(&raw, 3), format_log(&raw, 3));
    }
}
