//! The pattern library of historical verdicts (§VI-A "Detection"):
//! "When a new log sequence is generated, it is first matched against a
//! pattern library of historical anomalies ... If a new pattern is
//! detected, the sequence is processed by the offline-trained LogSynergy
//! model, minimizing computational overhead from redundant log patterns."

use std::collections::HashMap;

/// Cached verdict for a sequence pattern.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Verdict {
    /// Anomaly probability the model assigned when the pattern was first
    /// seen.
    pub probability: f32,
    /// Whether the pattern is anomalous (probability > threshold).
    pub anomalous: bool,
    /// For anomalous patterns: the event id whose removal lowers the
    /// score the most (leave-one-out saliency) — the alert's headline.
    pub culprit: Option<u32>,
}

/// A pattern key: the window's *distinct* event ids, sorted. Windows with
/// the same event mix (any order, any multiplicity) share a verdict — the
/// granularity at which operators think of "a log pattern". Anomalous
/// windows always contain an event id normal windows lack, so the two can
/// never collide on a key. Exposed so the micro-batching detector can
/// recognize same-pattern windows whose library insert is still in flight
/// within the current batch.
pub fn pattern_key(events: &[u32]) -> Vec<u32> {
    let mut k = events.to_vec();
    k.sort_unstable();
    k.dedup();
    k
}

fn key(events: &[u32]) -> Vec<u32> {
    pattern_key(events)
}

/// The pattern library.
#[derive(Default)]
pub struct PatternLibrary {
    map: HashMap<Vec<u32>, Verdict>,
    hits: u64,
    misses: u64,
}

impl PatternLibrary {
    /// Empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fast-path lookup.
    pub fn lookup(&mut self, events: &[u32]) -> Option<Verdict> {
        match self.map.get(&key(events)) {
            Some(&v) => {
                self.hits += 1;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records the model's verdict for a new pattern.
    pub fn insert(&mut self, events: &[u32], verdict: Verdict) {
        self.map.insert(key(events), verdict);
    }

    /// Number of cached patterns.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no patterns are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// (fast hits, model misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_miss_then_hit() {
        let mut lib = PatternLibrary::new();
        assert!(lib.lookup(&[1, 2, 3]).is_none());
        lib.insert(
            &[1, 2, 3],
            Verdict {
                probability: 0.9,
                anomalous: true,
                culprit: Some(3),
            },
        );
        let v = lib.lookup(&[1, 2, 3]).unwrap();
        assert!(v.anomalous);
        assert_eq!(lib.stats(), (1, 1));
    }

    #[test]
    fn order_and_multiplicity_do_not_split_patterns() {
        let mut lib = PatternLibrary::new();
        lib.insert(
            &[1, 2],
            Verdict {
                probability: 0.1,
                anomalous: false,
                culprit: None,
            },
        );
        assert!(lib.lookup(&[2, 1]).is_some(), "order-insensitive");
        assert!(
            lib.lookup(&[1, 2, 2, 1]).is_some(),
            "multiplicity-insensitive"
        );
        assert!(
            lib.lookup(&[1, 2, 3]).is_none(),
            "a new event id is a new pattern"
        );
        assert_eq!(lib.len(), 1);
    }
}
