//! The pattern library of historical verdicts (§VI-A "Detection"):
//! "When a new log sequence is generated, it is first matched against a
//! pattern library of historical anomalies ... If a new pattern is
//! detected, the sequence is processed by the offline-trained LogSynergy
//! model, minimizing computational overhead from redundant log patterns."

use std::collections::HashMap;

/// Cached verdict for a sequence pattern.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Verdict {
    /// Anomaly probability the model assigned when the pattern was first
    /// seen.
    pub probability: f32,
    /// Whether the pattern is anomalous (probability > threshold).
    pub anomalous: bool,
    /// For anomalous patterns: the event id whose removal lowers the
    /// score the most (leave-one-out saliency) — the alert's headline.
    pub culprit: Option<u32>,
}

/// A pattern key: the window's *distinct* event ids, sorted. Windows with
/// the same event mix (any order, any multiplicity) share a verdict — the
/// granularity at which operators think of "a log pattern". Anomalous
/// windows always contain an event id normal windows lack, so the two can
/// never collide on a key. Exposed so the micro-batching detector can
/// recognize same-pattern windows whose library insert is still in flight
/// within the current batch.
pub fn pattern_key(events: &[u32]) -> Vec<u32> {
    let mut k = events.to_vec();
    k.sort_unstable();
    k.dedup();
    k
}

fn key(events: &[u32]) -> Vec<u32> {
    pattern_key(events)
}

/// The pattern library. Unbounded by default (the paper's formulation);
/// [`PatternLibrary::bounded`] caps it with least-recently-used eviction
/// so long-running deployments with high pattern churn cannot grow it
/// without limit — evicted patterns simply fall through to the score
/// cache / model tiers on their next occurrence.
#[derive(Default)]
pub struct PatternLibrary {
    /// Verdict plus a recency stamp (the tick of the last hit/insert).
    map: HashMap<Vec<u32>, (Verdict, u64)>,
    /// 0 = unbounded.
    capacity: usize,
    /// Monotone recency clock; every hit or insert takes a fresh tick, so
    /// stamps are unique and eviction order is deterministic.
    tick: u64,
    hits: u64,
    misses: u64,
}

impl PatternLibrary {
    /// Empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty library evicting least-recently-used patterns beyond
    /// `capacity` (0 = unbounded, identical to [`PatternLibrary::new`]).
    pub fn bounded(capacity: usize) -> Self {
        PatternLibrary {
            capacity,
            ..Self::default()
        }
    }

    /// Fast-path lookup; refreshes the pattern's recency on a hit.
    pub fn lookup(&mut self, events: &[u32]) -> Option<Verdict> {
        self.tick += 1;
        match self.map.get_mut(&key(events)) {
            Some((v, stamp)) => {
                *stamp = self.tick;
                self.hits += 1;
                Some(*v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records the model's verdict for a new pattern, evicting the least
    /// recently used pattern first when the library is at capacity.
    pub fn insert(&mut self, events: &[u32], verdict: Verdict) {
        let k = key(events);
        self.tick += 1;
        if self.capacity > 0 && self.map.len() >= self.capacity && !self.map.contains_key(&k) {
            // Stamps are unique, so the minimum is unique and eviction is
            // deterministic regardless of hash-map iteration order.
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
            }
        }
        self.map.insert(k, (verdict, self.tick));
    }

    /// Number of cached patterns.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no patterns are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// (fast hits, model misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// The configured capacity (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_miss_then_hit() {
        let mut lib = PatternLibrary::new();
        assert!(lib.lookup(&[1, 2, 3]).is_none());
        lib.insert(
            &[1, 2, 3],
            Verdict {
                probability: 0.9,
                anomalous: true,
                culprit: Some(3),
            },
        );
        let v = lib.lookup(&[1, 2, 3]).unwrap();
        assert!(v.anomalous);
        assert_eq!(lib.stats(), (1, 1));
    }

    #[test]
    fn order_and_multiplicity_do_not_split_patterns() {
        let mut lib = PatternLibrary::new();
        lib.insert(
            &[1, 2],
            Verdict {
                probability: 0.1,
                anomalous: false,
                culprit: None,
            },
        );
        assert!(lib.lookup(&[2, 1]).is_some(), "order-insensitive");
        assert!(
            lib.lookup(&[1, 2, 2, 1]).is_some(),
            "multiplicity-insensitive"
        );
        assert!(
            lib.lookup(&[1, 2, 3]).is_none(),
            "a new event id is a new pattern"
        );
        assert_eq!(lib.len(), 1);
    }

    fn verdict(p: f32) -> Verdict {
        Verdict {
            probability: p,
            anomalous: p > 0.5,
            culprit: None,
        }
    }

    #[test]
    fn bounded_library_evicts_least_recently_used() {
        let mut lib = PatternLibrary::bounded(2);
        lib.insert(&[1], verdict(0.1));
        lib.insert(&[2], verdict(0.2));
        // Touch [1] so [2] becomes the LRU victim.
        assert!(lib.lookup(&[1]).is_some());
        lib.insert(&[3], verdict(0.3));
        assert_eq!(lib.len(), 2);
        assert!(lib.lookup(&[1]).is_some(), "recently used survives");
        assert!(lib.lookup(&[3]).is_some(), "fresh insert survives");
        assert!(lib.lookup(&[2]).is_none(), "LRU pattern evicted");
    }

    #[test]
    fn reinserting_existing_pattern_does_not_evict() {
        let mut lib = PatternLibrary::bounded(2);
        lib.insert(&[1], verdict(0.1));
        lib.insert(&[2], verdict(0.2));
        lib.insert(&[2], verdict(0.9));
        assert_eq!(lib.len(), 2);
        assert!(lib.lookup(&[1]).is_some());
        assert!(lib.lookup(&[2]).unwrap().anomalous, "verdict updated");
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let mut lib = PatternLibrary::bounded(0);
        for i in 0..100u32 {
            lib.insert(&[i], verdict(0.1));
        }
        assert_eq!(lib.len(), 100);
        assert_eq!(lib.capacity(), 0);
    }
}
