//! The assembled Fig. 7 service: collection thread → buffer → detection
//! thread → report sinks.

use std::thread;
use std::time::{Duration, Instant};

use crate::buffer::LogBuffer;
use crate::detect::{OnlineDetector, SequenceScorer};
use crate::record::{format_log, RawLog};
use crate::report::ReportSink;
use crate::vectorizer::EventVectorizer;

/// End-of-run summary of a pipeline execution.
#[derive(Clone, Debug)]
pub struct PipelineSummary {
    /// Logs ingested.
    pub logs: u64,
    /// Windows evaluated (fast + slow path).
    pub windows: u64,
    /// Windows answered by the pattern library.
    pub fast_hits: u64,
    /// Windows scored by the model.
    pub model_calls: u64,
    /// Reports delivered.
    pub reports: u64,
    /// New templates interpreted online.
    pub new_templates: usize,
    /// Wall-clock processing time.
    pub elapsed: Duration,
    /// Logs per second of end-to-end throughput.
    pub throughput: f64,
}

/// Runs the full pipeline over a finite log source: a producer thread
/// ships raw logs through the bounded buffer while the detection thread
/// formats, windows, detects, and reports.
pub fn run_pipeline<S: SequenceScorer + 'static>(
    source: Vec<RawLog>,
    vectorizer: EventVectorizer,
    scorer: S,
    sink: impl ReportSink + 'static,
) -> PipelineSummary {
    let buffer = LogBuffer::new(4, 1024);
    let producer = buffer.producer();
    let mut consumer = buffer.consumer();
    let n = source.len() as u64;

    let shipper = thread::spawn(move || {
        for log in source {
            producer.send(log);
        }
        // Producer handle drops here, closing its side.
    });

    let detector_thread = thread::spawn(move || {
        let mut detector = OnlineDetector::new(vectorizer, scorer);
        let mut seq_no = 0u64;
        let mut reports = 0u64;
        let start = Instant::now();
        while let Some(raw) = consumer.recv(Duration::from_millis(200)) {
            let structured = format_log(raw, seq_no);
            seq_no += 1;
            if let Some(report) = detector.ingest(structured) {
                sink.deliver(&report);
                reports += 1;
            }
        }
        let elapsed = start.elapsed();
        let windows = detector.fast_hits + detector.model_calls;
        PipelineSummary {
            logs: seq_no,
            windows,
            fast_hits: detector.fast_hits,
            model_calls: detector.model_calls,
            reports,
            new_templates: detector.vectorizer().new_templates(),
            elapsed,
            throughput: seq_no as f64 / elapsed.as_secs_f64().max(1e-9),
        }
    });

    shipper.join().expect("shipper thread panicked");
    let mut summary = detector_thread.join().expect("detector thread panicked");
    summary.logs = summary.logs.min(n);
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::SequenceScorer;
    use crate::report::MemorySink;
    use logsynergy_lei::LeiConfig;
    use logsynergy_loggen::SystemId;

    struct EvenScorer;
    impl SequenceScorer for EvenScorer {
        fn score(&self, events: &[u32], _table: &[Vec<f32>]) -> f32 {
            if events.contains(&1) {
                0.95
            } else {
                0.05
            }
        }
    }

    #[test]
    fn end_to_end_reports_injected_anomaly() {
        let mut source = Vec::new();
        for i in 0..120u64 {
            let msg = if (40..44).contains(&i) {
                "drive volume dead offline spindle".to_string()
            } else {
                "session open remote peer lan".to_string()
            };
            source.push(RawLog {
                system: "b".into(),
                timestamp: i,
                message: msg,
            });
        }
        let v = EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());
        let sink = MemorySink::new();
        let summary = run_pipeline(source, v, EvenScorer, sink.clone());
        assert_eq!(summary.logs, 120);
        assert!(summary.reports > 0, "burst must be reported");
        assert!(
            summary.fast_hits > 0,
            "repeating normal windows hit the library"
        );
        assert!(summary.windows >= 20);
        assert_eq!(summary.reports as usize, sink.len());
        assert!(
            summary.throughput > 100.0,
            "throughput {}",
            summary.throughput
        );
    }
}
