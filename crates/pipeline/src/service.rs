//! The assembled Fig. 7 service: collection thread → partitioned buffer →
//! per-partition detection workers (micro-batched) → report sinks.
//!
//! Sharding follows the buffer's keyed partitioning: a system's logs all
//! land in one partition, each partition is owned by exactly one worker,
//! and a worker processes its shard in arrival order — so per-system
//! window order, verdicts, and report order are identical to a
//! single-thread run. Each worker drains its shard in bursts
//! ([`crate::buffer::Consumer::recv_batch`]) bounded by a window cap and a
//! latency deadline, answers pattern-library and score-cache hits inline,
//! and ships the remaining windows through one batched model call.
//!
//! Workers publish live telemetry into the global `logsynergy-telemetry`
//! registry: per-tier verdict counters (`pipeline.tier.*`), batch-size and
//! queue-depth histograms, an active-worker gauge, and per-stage span
//! timings (`span.pipeline.batch.{recv,detect,deliver}`). Metric handles
//! are resolved once per worker before the hot loop, so the steady-state
//! cost is a few relaxed atomic adds per *batch*, not per log. See
//! `docs/telemetry.md` for the catalog.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;
use std::time::{Duration, Instant};

use logsynergy_telemetry as telemetry;

use logsynergy::wal::CursorState;

use crate::buffer::LogBuffer;
use crate::detect::{OnlineDetector, RetryPolicy, SequenceScorer, ServeMode};
use crate::durable::{DurableWorkerInit, WalOptions};
use crate::error::DeadLetter;
use crate::faults::{self, points, Fault};
use crate::record::{format_log, RawLog};
use crate::report::ReportSink;
use crate::vectorizer::EventVectorizer;

/// Serving knobs for [`run_pipeline_with`].
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Buffer partitions; one detection worker is spawned per partition.
    pub partitions: usize,
    /// Per-partition buffer capacity (producers block when full).
    pub partition_capacity: usize,
    /// Micro-batch size cap, in completed windows per batch.
    pub batch_windows: usize,
    /// Micro-batch latency deadline: a worker holds an unfilled batch at
    /// most this long before scoring what it has.
    pub batch_deadline: Duration,
    /// Per-worker window-score LRU cache capacity (0 disables).
    pub score_cache: usize,
    /// Retry budget per batch, for both transient model-tier failures
    /// and panicking batch attempts; exhausting it degrades (transient)
    /// or quarantines (panic) the batch.
    pub max_retries: u32,
    /// Base backoff between retries/restarts (doubles per attempt,
    /// capped, with deterministic jitter).
    pub retry_backoff: Duration,
    /// Wall-clock budget for one batch's model-tier scoring attempts.
    pub score_deadline: Duration,
    /// Load-shedding high-watermark in queued logs per partition: while
    /// a worker's queue depth is at or above it, batches are served from
    /// the cheap tiers only. 0 disables shedding.
    pub shed_watermark: usize,
    /// Shared kernel-thread budget split evenly across the detection
    /// workers: each worker's model-tier GEMMs run with at most
    /// `max(1, core_budget / partitions)` kernel threads, so pipeline
    /// parallelism (workers) and kernel parallelism (threads per GEMM)
    /// compose instead of oversubscribing the machine. 0 = auto (the
    /// hardware thread count is the budget).
    pub core_budget: usize,
    /// Per-worker pattern-library capacity with LRU eviction
    /// (0 = unbounded, the paper's formulation).
    pub library_capacity: usize,
    /// Durable transport: when set, every record is appended and flushed
    /// to a per-partition write-ahead log before it is acknowledged, and
    /// workers commit recovery cursors as they account batches (see
    /// [`crate::durable`]). `None` keeps the classic in-memory path.
    pub wal: Option<WalOptions>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            partitions: 4,
            partition_capacity: 1024,
            batch_windows: 64,
            batch_deadline: Duration::from_millis(5),
            score_cache: 4096,
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            score_deadline: Duration::from_secs(30),
            shed_watermark: 0,
            core_budget: 0,
            library_capacity: 0,
            wal: None,
        }
    }
}

impl PipelineConfig {
    /// The pre-batching serving path: one worker, one window at a time,
    /// no score cache. The determinism reference for everything else.
    pub fn unbatched() -> Self {
        PipelineConfig {
            partitions: 1,
            batch_windows: 1,
            score_cache: 0,
            ..Self::default()
        }
    }
}

/// End-of-run summary of a pipeline execution.
#[derive(Clone, Debug)]
pub struct PipelineSummary {
    /// Logs ingested.
    pub logs: u64,
    /// Windows assembled: every one resolves to exactly one of the six
    /// buckets below (pattern + cache + model + degraded + shed +
    /// quarantined == windows — the conservation invariant chaos tests
    /// assert).
    pub windows: u64,
    /// Windows answered by the pattern library.
    pub pattern_hits: u64,
    /// Windows answered by the exact-window score cache.
    pub cache_hits: u64,
    /// Windows scored by the model.
    pub model_calls: u64,
    /// Windows degraded to the cheap tiers by persistent model failure.
    pub degraded: u64,
    /// Windows shed under overload (cheap tiers only).
    pub shed: u64,
    /// Windows quarantined to the dead-letter queue.
    pub quarantined: u64,
    /// Model-tier retry attempts performed.
    pub retries: u64,
    /// Worker batch attempts that panicked and were restarted.
    pub worker_restarts: u64,
    /// Durable-mode workers that died outright (a panic outside every
    /// isolation layer, e.g. an injected cursor-commit crash). Their
    /// partition's accounting is whatever they last committed; the
    /// write-ahead log replays the rest on the next start. In-memory
    /// pools have no log to replay from, so a worker death there
    /// propagates out of [`DetectionPool::join`] instead of being
    /// counted here.
    pub crashed_workers: u64,
    /// The dead-letter queue: one record per quarantined window.
    pub dead_letters: Vec<DeadLetter>,
    /// Reports delivered.
    pub reports: u64,
    /// New templates interpreted online.
    pub new_templates: usize,
    /// Wall-clock processing time.
    pub elapsed: Duration,
    /// Logs per second of end-to-end throughput.
    pub throughput: f64,
}

struct WorkerStats {
    logs: u64,
    pattern_hits: u64,
    cache_hits: u64,
    model_calls: u64,
    degraded: u64,
    shed: u64,
    quarantined: u64,
    retries: u64,
    restarts: u64,
    dead_letters: Vec<DeadLetter>,
    reports: u64,
    new_templates: usize,
}

/// Capped exponential backoff for restart/ship retries (deterministic;
/// jitter comes from the detector's own policy where it matters).
fn restart_backoff(base: Duration, attempt: u64) -> Duration {
    let base = base.max(Duration::from_micros(100));
    base.saturating_mul(1u32 << attempt.min(10) as u32)
        .min(Duration::from_millis(100))
}

/// A running set of per-partition detection workers draining a
/// [`LogBuffer`] — the detection half of [`run_pipeline_with`], exposed
/// so network front doors (the `logsynergy-serve` ingest daemon) can pair
/// the same workers with their own producers instead of an in-process
/// source vector.
///
/// Workers run until every producer handle (and the buffer itself, which
/// holds one sender per partition) is dropped and the queues drain;
/// [`DetectionPool::join`] then folds the per-worker stats into a
/// [`PipelineSummary`] whose six-bucket accounting invariant holds.
pub struct DetectionPool {
    workers: Vec<thread::JoinHandle<WorkerStats>>,
    start: Instant,
    /// Whether the pool was spawned with a write-ahead log behind it. A
    /// dead durable worker's partition is parked in the log and replayed
    /// on the next start; a dead in-memory worker's partition is gone.
    durable: bool,
}

impl DetectionPool {
    /// Spawns one detection worker per buffer partition. The vectorizer,
    /// scorer, and sink are cloned once per worker; scorers like
    /// [`crate::detect::ModelScorer`] share the trained weights across
    /// clones and fork only their private inference session.
    pub fn spawn<S, K>(
        buffer: &LogBuffer,
        vectorizer: EventVectorizer,
        scorer: S,
        sink: K,
        config: &PipelineConfig,
    ) -> DetectionPool
    where
        S: SequenceScorer + Clone + 'static,
        K: ReportSink + Clone + 'static,
    {
        let inits = (0..config.partitions).map(|_| None).collect();
        Self::spawn_inner(buffer, vectorizer, scorer, sink, config, inits)
    }

    /// [`DetectionPool::spawn`] with one durable-worker init per
    /// partition: workers resume from their recovered cursors and commit
    /// a new cursor after every accounted batch. Used by
    /// [`crate::durable::start_durable`].
    pub(crate) fn spawn_durable<S, K>(
        buffer: &LogBuffer,
        vectorizer: EventVectorizer,
        scorer: S,
        sink: K,
        config: &PipelineConfig,
        inits: Vec<DurableWorkerInit>,
    ) -> DetectionPool
    where
        S: SequenceScorer + Clone + 'static,
        K: ReportSink + Clone + 'static,
    {
        assert_eq!(inits.len(), config.partitions);
        Self::spawn_inner(
            buffer,
            vectorizer,
            scorer,
            sink,
            config,
            inits.into_iter().map(Some).collect(),
        )
    }

    fn spawn_inner<S, K>(
        buffer: &LogBuffer,
        vectorizer: EventVectorizer,
        scorer: S,
        sink: K,
        config: &PipelineConfig,
        inits: Vec<Option<DurableWorkerInit>>,
    ) -> DetectionPool
    where
        S: SequenceScorer + Clone + 'static,
        K: ReportSink + Clone + 'static,
    {
        assert!(config.partitions > 0 && config.batch_windows > 0);
        assert_eq!(buffer.partitions(), config.partitions);
        let durable = inits.iter().any(|i| i.is_some());
        // Composable parallelism: split the kernel-thread budget evenly over
        // the detection workers, so N workers × M kernel threads never exceeds
        // the budget. The override is per-thread, so it composes with nested
        // `with_threads` calls inside the kernels (small GEMMs below the
        // per-shape work threshold stay serial regardless).
        let budget = if config.core_budget == 0 {
            logsynergy_nn::kernels::hardware_threads()
        } else {
            config.core_budget
        };
        let kernel_threads = (budget / config.partitions).max(1);
        telemetry::global().set_tag("pipeline.scorer_tier", scorer.tier_label());
        let consumers: Vec<_> = (0..config.partitions)
            .map(|p| buffer.partition_consumer(p))
            .collect();
        let start = Instant::now();
        let workers = consumers
            .into_iter()
            .zip(inits)
            .map(|(consumer, init)| {
                spawn_worker(
                    consumer,
                    vectorizer.clone(),
                    scorer.clone(),
                    sink.clone(),
                    config.clone(),
                    kernel_threads,
                    init,
                )
            })
            .collect();
        DetectionPool {
            workers,
            start,
            durable,
        }
    }

    /// Waits for every worker to hit end-of-stream and folds their stats
    /// into a summary. Blocks until all producer handles are gone.
    pub fn join(self) -> PipelineSummary {
        let mut logs = 0u64;
        let mut pattern_hits = 0u64;
        let mut cache_hits = 0u64;
        let mut model_calls = 0u64;
        let mut degraded = 0u64;
        let mut shed = 0u64;
        let mut quarantined = 0u64;
        let mut retries = 0u64;
        let mut worker_restarts = 0u64;
        let mut crashed_workers = 0u64;
        let mut dead_letters = Vec::new();
        let mut reports = 0u64;
        let mut new_templates = 0usize;
        for worker in self.workers {
            // A durable worker that dies outside every isolation layer
            // (an injected cursor-commit crash, a kill test) folds in as
            // zero: its partition's truth is whatever it last committed,
            // and the next start replays the rest from the log. An
            // in-memory worker has no log to replay from — a death there
            // is silent data loss, so it stays a loud panic.
            let s = match worker.join() {
                Ok(s) => s,
                Err(_) if self.durable => {
                    crashed_workers += 1;
                    continue;
                }
                Err(e) => std::panic::resume_unwind(e),
            };
            logs += s.logs;
            pattern_hits += s.pattern_hits;
            cache_hits += s.cache_hits;
            model_calls += s.model_calls;
            degraded += s.degraded;
            shed += s.shed;
            quarantined += s.quarantined;
            retries += s.retries;
            worker_restarts += s.restarts;
            dead_letters.extend(s.dead_letters);
            reports += s.reports;
            new_templates += s.new_templates;
        }
        let elapsed = self.start.elapsed();
        PipelineSummary {
            logs,
            windows: pattern_hits + cache_hits + model_calls + degraded + shed + quarantined,
            pattern_hits,
            cache_hits,
            model_calls,
            degraded,
            shed,
            quarantined,
            retries,
            worker_restarts,
            crashed_workers,
            dead_letters,
            reports,
            new_templates,
            elapsed,
            throughput: logs as f64 / elapsed.as_secs_f64().max(1e-9),
        }
    }
}

/// Runs the full pipeline over a finite log source with explicit serving
/// knobs: a producer thread ships raw logs through the bounded partitioned
/// buffer while one detection worker per partition formats, windows,
/// micro-batches, detects, and reports.
///
/// The vectorizer, scorer, and sink are cloned once per worker; scorers
/// like [`crate::detect::ModelScorer`] share the trained weights across
/// clones and fork only their private inference session.
pub fn run_pipeline_with<S, K>(
    source: Vec<RawLog>,
    vectorizer: EventVectorizer,
    scorer: S,
    sink: K,
    config: PipelineConfig,
) -> PipelineSummary
where
    S: SequenceScorer + Clone + 'static,
    K: ReportSink + Clone + 'static,
{
    if config.wal.is_some() {
        return run_pipeline_durable(source, vectorizer, scorer, sink, config);
    }
    let buffer = LogBuffer::new(config.partitions, config.partition_capacity);
    let producer = buffer.producer();
    let pool = DetectionPool::spawn(&buffer, vectorizer, scorer, sink, &config);
    // Drop the buffer's own sender handles: once the shipper finishes, the
    // channels disconnect and workers see a definitive end of stream.
    drop(buffer);
    let n = source.len() as u64;

    let shipper = thread::spawn(move || {
        'ship: for log in source {
            let mut slot = Some(log);
            let mut attempt = 0u64;
            while let Some(log) = slot.take() {
                // `buffer.push` injection point, consulted while this
                // loop still owns the record: a simulated producer crash
                // or transient refusal backs off and retries the same
                // record, so no log is ever lost on the way in.
                let healthy = catch_unwind(|| match faults::inject(points::BUFFER_PUSH) {
                    Some(Fault::Panic) => panic!("{}: buffer.push", faults::PANIC_MARKER),
                    Some(Fault::TransientError) => false,
                    Some(Fault::Latency(d)) => {
                        thread::sleep(d);
                        true
                    }
                    Some(Fault::CorruptScore) | None => true,
                })
                .unwrap_or(false);
                if !healthy {
                    attempt += 1;
                    slot = Some(log);
                    thread::sleep(restart_backoff(Duration::from_micros(200), attempt));
                    continue;
                }
                if producer.try_send(log).is_err() {
                    // Every worker is gone; nothing can consume what's
                    // left. Stop shipping rather than panic.
                    break 'ship;
                }
            }
        }
        // Producer handle drops here, closing its side.
    });

    shipper.join().expect("shipper thread panicked");
    let mut summary = pool.join();
    summary.logs = summary.logs.min(n);
    summary
}

/// The durable-mode body of [`run_pipeline_with`]: the source ships
/// through a [`crate::durable::DurableProducer`] (append + flush before
/// the ack), and the summary's accounting is *cumulative* — it resumes
/// from whatever cursors a previous run of the same WAL directory
/// committed, replaying unacked records first. `summary.logs` is
/// therefore the all-time record count for the directory, not this
/// call's `source.len()`.
fn run_pipeline_durable<S, K>(
    source: Vec<RawLog>,
    vectorizer: EventVectorizer,
    scorer: S,
    sink: K,
    config: PipelineConfig,
) -> PipelineSummary
where
    S: SequenceScorer + Clone + 'static,
    K: ReportSink + Clone + 'static,
{
    let durable = crate::durable::start_durable(vectorizer, scorer, sink, &config)
        .expect("write-ahead log unavailable");
    let producer = durable.producer;
    let partitions = config.partitions.max(1);
    let shipper = thread::spawn(move || {
        // Group commit: accumulate per-partition micro-batches so each
        // flush pays one partition-lock acquisition and one WAL
        // write+flush for up to SHIP_BATCH records instead of one per
        // record. A panic out of the append (an injected producer
        // crash) kills the shipper like a dead ingest process: records
        // not yet appended are simply never sent — nothing was acked —
        // and the caller's retry layer re-ships them.
        const SHIP_BATCH: usize = 64;
        let mut pending: Vec<Vec<RawLog>> = (0..partitions).map(|_| Vec::new()).collect();
        let flush = |partition: usize, batch: Vec<RawLog>| -> bool {
            let mut slot = Some(batch);
            let mut attempt = 0u64;
            while let Some(batch) = slot.take() {
                match catch_unwind(AssertUnwindSafe(|| producer.send_batch(partition, batch))) {
                    Ok(Ok(_)) => {}
                    Ok(Err((rest, e))) if e.is_transient() => {
                        attempt += 1;
                        slot = Some(rest);
                        thread::sleep(restart_backoff(Duration::from_micros(200), attempt));
                    }
                    Ok(Err(_)) | Err(_) => return false,
                }
            }
            true
        };
        'ship: for log in source {
            let partition = producer.partition_for(&log.system);
            let batch = &mut pending[partition];
            batch.push(log);
            if batch.len() >= SHIP_BATCH && !flush(partition, std::mem::take(batch)) {
                break 'ship;
            }
        }
        for (partition, batch) in pending.into_iter().enumerate() {
            if !batch.is_empty() && !flush(partition, batch) {
                break;
            }
        }
        // Producer handle drops here, closing its side.
    });
    shipper.join().expect("shipper thread panicked");
    durable.pool.join()
}

fn spawn_worker<S, K>(
    mut consumer: crate::buffer::Consumer,
    vectorizer: EventVectorizer,
    scorer: S,
    sink: K,
    cfg: PipelineConfig,
    kernel_threads: usize,
    durable: Option<DurableWorkerInit>,
) -> thread::JoinHandle<WorkerStats>
where
    S: SequenceScorer + 'static,
    K: ReportSink + 'static,
{
    thread::spawn(move || {
        // The whole serving loop runs under this worker's share of
        // the kernel-thread budget; every model-tier GEMM it issues
        // inherits the cap through the per-thread override.
        let serve = move || {
            let mut detector = OnlineDetector::new(vectorizer, scorer)
                .with_cache_capacity(cfg.score_cache)
                .with_library_capacity(cfg.library_capacity)
                .with_retry_policy(RetryPolicy {
                    max_retries: cfg.max_retries,
                    backoff: cfg.retry_backoff,
                    deadline: cfg.score_deadline,
                    ..RetryPolicy::default()
                });
            // The batch cap counts completed windows; convert to the
            // log burst that yields that many windows.
            let (_, step) = detector.geometry();
            let max_logs = cfg.batch_windows.saturating_mul(step).max(1);
            let mut seq_no = 0u64;
            let mut reports_delivered = 0u64;
            let mut restarts = 0u64;
            let mut reports = Vec::new();
            // Durable mode: resume from the recovered cursor — restore
            // the six-tier counters, re-prime the window assembler with
            // the records it had buffered at the commit point (context,
            // *not* re-counted), and continue the sequence where the
            // cursor left off. Records past the cursor arrive again
            // through the buffer (the replay) and are re-processed with
            // their original sequence numbers.
            let mut committer = durable.map(|init| {
                detector.pattern_hits = init.cursor.pattern_hits;
                detector.cache_hits = init.cursor.cache_hits;
                detector.model_calls = init.cursor.model_calls;
                detector.degraded = init.cursor.degraded;
                detector.shed = init.cursor.shed;
                detector.quarantined = init.cursor.quarantined;
                detector.retries = init.cursor.retries;
                detector.prime_context(init.context, init.cursor.since_last_window as usize);
                seq_no = init.cursor.next_seq;
                reports_delivered = init.cursor.reports;
                (init.committer, init.ack_horizon)
            });
            // Telemetry handles, resolved once before the hot loop.
            let tele = telemetry::global().scoped("pipeline");
            let c_logs = tele.counter("logs");
            let c_windows = tele.counter("windows");
            let c_reports = tele.counter("reports");
            let c_pattern = tele.counter("tier.pattern");
            let c_cache = tele.counter("tier.cache");
            let c_model = tele.counter("tier.model");
            let c_degraded = tele.counter("degraded");
            let c_shed = tele.counter("shed");
            let c_quarantined = tele.counter("quarantined");
            let c_retries = tele.counter("retries");
            let c_restarts = tele.counter("worker.restarts");
            let h_batch_logs = tele.histogram("batch.logs");
            let h_batch_windows = tele.histogram("batch.windows");
            let h_queue_depth = tele.histogram("queue.depth");
            let c_commits = tele.counter("wal_commits");
            let c_commit_errors = tele.counter("wal_commit_errors");
            let g_active = tele.gauge("workers.active");
            g_active.add(1);
            loop {
                let _batch_span = telemetry::span("pipeline.batch");
                let batch = {
                    let _recv = telemetry::span("recv");
                    // `batch.drain` may panic by injection before any
                    // record leaves the queue; restart the drain after
                    // backoff — nothing was lost.
                    match catch_unwind(AssertUnwindSafe(|| {
                        consumer.recv_batch(max_logs, cfg.batch_deadline)
                    })) {
                        Ok(batch) => batch,
                        Err(_) => {
                            restarts += 1;
                            c_restarts.add(1);
                            thread::sleep(restart_backoff(cfg.retry_backoff, restarts));
                            continue;
                        }
                    }
                };
                let Some(batch) = batch else { break };
                if batch.is_empty() {
                    continue;
                }
                let depth = consumer.depth();
                h_queue_depth.record(depth);
                h_batch_logs.record(batch.len() as u64);
                c_logs.add(batch.len() as u64);
                // Load-shedding decision, once per batch: while the
                // shard's queue is over the watermark, serve the
                // cheap tiers only until depth recovers.
                let mode = if cfg.shed_watermark > 0 && depth >= cfg.shed_watermark as u64 {
                    ServeMode::Shed
                } else {
                    ServeMode::Normal
                };
                let (p0, k0, m0) = (
                    detector.pattern_hits,
                    detector.cache_hits,
                    detector.model_calls,
                );
                let (d0, s0, q0, r0) = (
                    detector.degraded,
                    detector.shed,
                    detector.quarantined,
                    detector.retries,
                );
                // Process the batch under panic isolation: a faulted
                // attempt rolls the detector back to its checkpoint
                // and replays the same raw logs with the same
                // sequence numbers; a batch that keeps faulting past
                // the retry budget is quarantined to the dead-letter
                // queue instead of wedging the worker.
                let base_seq = seq_no;
                let mut attempt = 0u32;
                loop {
                    let cp = detector.checkpoint();
                    let reports_mark = reports.len();
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        let _detect = telemetry::span("detect");
                        let structured = batch
                            .iter()
                            .enumerate()
                            .map(|(k, raw)| format_log(raw, base_seq + k as u64));
                        detector.ingest_batch_mode(structured, &mut reports, mode);
                    }));
                    match outcome {
                        Ok(()) => break,
                        Err(_) => {
                            detector.restore(cp);
                            reports.truncate(reports_mark);
                            restarts += 1;
                            c_restarts.add(1);
                            if attempt >= cfg.max_retries {
                                let structured = batch
                                    .iter()
                                    .enumerate()
                                    .map(|(k, raw)| format_log(raw, base_seq + k as u64));
                                detector.quarantine_batch(
                                    structured,
                                    "batch exhausted its panic-retry budget",
                                );
                                break;
                            }
                            attempt += 1;
                            thread::sleep(restart_backoff(cfg.retry_backoff, attempt as u64));
                        }
                    }
                }
                seq_no += batch.len() as u64;
                let (dp, dk, dm) = (
                    detector.pattern_hits - p0,
                    detector.cache_hits - k0,
                    detector.model_calls - m0,
                );
                let (dd, ds, dq) = (
                    detector.degraded - d0,
                    detector.shed - s0,
                    detector.quarantined - q0,
                );
                c_pattern.add(dp);
                c_cache.add(dk);
                c_model.add(dm);
                c_degraded.add(dd);
                c_shed.add(ds);
                c_quarantined.add(dq);
                c_retries.add(detector.retries - r0);
                let dw = dp + dk + dm + dd + ds + dq;
                c_windows.add(dw);
                h_batch_windows.record(dw);
                {
                    let _deliver = telemetry::span("deliver");
                    for report in reports.drain(..) {
                        sink.deliver(&report);
                        reports_delivered += 1;
                    }
                }
                // Durable commit: accounting and delivery for this batch
                // are done, so the cursor may advance. Deliberately
                // *outside* the panic-isolation layer — a crash here
                // (e.g. an injected cursor-commit fault) must kill the
                // worker, not replay the batch inside the same process,
                // because delivery already happened; the next start
                // re-derives everything from the last durable cursor. A
                // transient commit failure is only counted: the next
                // commit is cumulative and covers this one.
                if let Some((cf, horizon)) = committer.as_mut() {
                    let (fill, since) = detector.assembler_state();
                    let state = CursorState {
                        next_seq: seq_no,
                        window_fill: fill as u32,
                        since_last_window: since as u32,
                        pattern_hits: detector.pattern_hits,
                        cache_hits: detector.cache_hits,
                        model_calls: detector.model_calls,
                        degraded: detector.degraded,
                        shed: detector.shed,
                        quarantined: detector.quarantined,
                        retries: detector.retries,
                        reports: reports_delivered,
                    };
                    match cf.commit(&state) {
                        Ok(()) => {
                            c_commits.add(1);
                            horizon
                                .store(seq_no - fill as u64, std::sync::atomic::Ordering::Release);
                        }
                        Err(_) => c_commit_errors.add(1),
                    }
                }
            }
            c_reports.add(reports_delivered);
            g_active.add(-1);
            WorkerStats {
                logs: seq_no,
                pattern_hits: detector.pattern_hits,
                cache_hits: detector.cache_hits,
                model_calls: detector.model_calls,
                degraded: detector.degraded,
                shed: detector.shed,
                quarantined: detector.quarantined,
                retries: detector.retries,
                restarts,
                dead_letters: detector.take_dead_letters(),
                reports: reports_delivered,
                new_templates: detector.vectorizer().new_templates(),
            }
        };
        logsynergy_nn::kernels::with_threads(kernel_threads, serve)
    })
}

/// Runs the full pipeline with the default serving configuration
/// ([`PipelineConfig::default`]).
pub fn run_pipeline<S, K>(
    source: Vec<RawLog>,
    vectorizer: EventVectorizer,
    scorer: S,
    sink: K,
) -> PipelineSummary
where
    S: SequenceScorer + Clone + 'static,
    K: ReportSink + Clone + 'static,
{
    run_pipeline_with(source, vectorizer, scorer, sink, PipelineConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::SequenceScorer;
    use crate::report::MemorySink;
    use logsynergy_lei::LeiConfig;
    use logsynergy_loggen::SystemId;

    #[derive(Clone)]
    struct EvenScorer;
    impl SequenceScorer for EvenScorer {
        fn score(&self, events: &[u32], _table: &[Vec<f32>]) -> f32 {
            if events.contains(&1) {
                0.95
            } else {
                0.05
            }
        }
    }

    fn burst_source(system: &str, n: u64, burst: std::ops::Range<u64>) -> Vec<RawLog> {
        (0..n)
            .map(|i| {
                let msg = if burst.contains(&i) {
                    "drive volume dead offline spindle".to_string()
                } else {
                    "session open remote peer lan".to_string()
                };
                RawLog {
                    system: system.into(),
                    timestamp: i,
                    message: msg,
                }
            })
            .collect()
    }

    #[test]
    fn end_to_end_reports_injected_anomaly() {
        let source = burst_source("b", 120, 40..44);
        let v = EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());
        let sink = MemorySink::new();
        let summary = run_pipeline(source, v, EvenScorer, sink.clone());
        assert_eq!(summary.logs, 120);
        assert!(summary.reports > 0, "burst must be reported");
        assert!(
            summary.pattern_hits > 0,
            "repeating normal windows hit the library"
        );
        assert!(summary.windows >= 20);
        assert_eq!(summary.reports as usize, sink.len());
        assert!(
            summary.throughput > 100.0,
            "throughput {}",
            summary.throughput
        );
    }

    #[test]
    fn batched_sharded_run_matches_unbatched_single_thread() {
        let source = burst_source("b", 200, 60..66);
        let make_v = || EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());

        let baseline_sink = MemorySink::new();
        let baseline = run_pipeline_with(
            source.clone(),
            make_v(),
            EvenScorer,
            baseline_sink.clone(),
            PipelineConfig::unbatched(),
        );

        for config in [
            PipelineConfig::default(),
            PipelineConfig {
                partitions: 4,
                batch_windows: 8,
                ..PipelineConfig::default()
            },
        ] {
            let sink = MemorySink::new();
            let s = run_pipeline_with(source.clone(), make_v(), EvenScorer, sink.clone(), config);
            assert_eq!(s.logs, baseline.logs);
            assert_eq!(s.windows, baseline.windows);
            assert_eq!(s.pattern_hits, baseline.pattern_hits);
            assert_eq!(s.model_calls + s.cache_hits, baseline.model_calls);
            assert_eq!(s.reports, baseline.reports);
            assert_eq!(
                sink.reports(),
                baseline_sink.reports(),
                "reports must be identical, in the same order"
            );
        }
    }

    #[test]
    fn multi_system_run_preserves_per_system_report_order() {
        // Three tenants, each streaming its own burst; partitioning by
        // system key must keep every tenant's reports in arrival order.
        let mut source = Vec::new();
        let tenants = ["tenant-a", "tenant-b", "tenant-c"];
        for i in 0..240u64 {
            let tenant = tenants[(i % 3) as usize];
            let msg = if (90..102).contains(&i) {
                "drive volume dead offline spindle".to_string()
            } else {
                "session open remote peer lan".to_string()
            };
            source.push(RawLog {
                system: tenant.into(),
                timestamp: i,
                message: msg,
            });
        }
        let v = EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());
        let sink = MemorySink::new();
        let summary = run_pipeline(source, v, EvenScorer, sink.clone());
        assert_eq!(summary.logs, 240);
        assert!(summary.reports > 0, "bursts must be reported");
        let mut last_seen: std::collections::HashMap<String, u64> = Default::default();
        for r in sink.reports() {
            if let Some(&prev) = last_seen.get(&r.system) {
                assert!(
                    r.start_timestamp >= prev,
                    "per-system report order violated for {}",
                    r.system
                );
            }
            last_seen.insert(r.system.clone(), r.start_timestamp);
        }
        assert!(last_seen.len() > 1, "multiple tenants must report");
    }
}
