//! Bounded LRU cache of model scores keyed by the window's exact event-id
//! sequence.
//!
//! The pattern library memoizes *verdicts* at pattern granularity (sorted
//! distinct event ids). This cache sits one tier below it, in front of the
//! model: it memoizes raw *scores* for exact windows — including the
//! leave-one-out reduced windows the culprit search generates, which the
//! library never sees. Log streams are highly repetitive, so a small
//! bounded cache absorbs a large share of what would otherwise be repeat
//! forward passes.
//!
//! Because the model forward is deterministic (a pure function of the
//! window and the embedding table), a cache hit returns bitwise the same
//! score a recomputation would — caching changes cost, never results.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

struct Slot {
    key: Box<[u32]>,
    score: f32,
    prev: usize,
    next: usize,
}

/// A bounded LRU map from exact event-id windows to model scores.
pub struct ScoreCache {
    /// Window → slot index. The hash of the event-id sequence is the key.
    map: HashMap<Box<[u32]>, usize>,
    /// Slot storage; `prev`/`next` thread a most-recent-first list.
    slots: Vec<Slot>,
    head: usize,
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl ScoreCache {
    /// A cache holding at most `capacity` windows. Capacity 0 disables
    /// caching entirely (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        ScoreCache {
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            slots: Vec::with_capacity(capacity.min(1 << 16)),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Cached score for an exact window, refreshing its recency.
    pub fn get(&mut self, events: &[u32]) -> Option<f32> {
        match self.map.get(events).copied() {
            Some(i) => {
                self.hits += 1;
                self.unlink(i);
                self.push_front(i);
                Some(self.slots[i].score)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a score, evicting the least-recently-used window when full.
    pub fn insert(&mut self, events: &[u32], score: f32) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(events) {
            // Re-scoring the same window yields the same bits; just refresh.
            self.slots[i].score = score;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        let key: Box<[u32]> = events.into();
        let i = if self.slots.len() < self.capacity {
            self.slots.push(Slot {
                key: key.clone(),
                score,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        } else {
            // Evict the tail (least recently used) and reuse its slot.
            let i = self.tail;
            self.unlink(i);
            let old = std::mem::replace(&mut self.slots[i].key, key.clone());
            self.map.remove(&old);
            self.slots[i].score = score;
            i
        };
        self.map.insert(key, i);
        self.push_front(i);
    }

    /// Windows currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum windows retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `(hits, misses)` over the cache's lifetime.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        match prev {
            NIL => {
                if self.head == i {
                    self.head = next;
                }
            }
            p => self.slots[p].next = next,
        }
        match next {
            NIL => {
                if self.tail == i {
                    self.tail = prev;
                }
            }
            n => self.slots[n].prev = prev,
        }
        self.slots[i].prev = NIL;
        self.slots[i].next = NIL;
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_inserted_score_bitwise() {
        let mut c = ScoreCache::new(4);
        assert_eq!(c.get(&[1, 2, 3]), None);
        c.insert(&[1, 2, 3], 0.731_f32);
        assert_eq!(c.get(&[1, 2, 3]).unwrap().to_bits(), 0.731_f32.to_bits());
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = ScoreCache::new(2);
        c.insert(&[1], 0.1);
        c.insert(&[2], 0.2);
        // Touch [1] so [2] becomes the LRU entry.
        assert!(c.get(&[1]).is_some());
        c.insert(&[3], 0.3);
        assert_eq!(c.len(), 2);
        assert!(c.get(&[2]).is_none(), "LRU entry must be evicted");
        assert!(c.get(&[1]).is_some());
        assert!(c.get(&[3]).is_some());
    }

    #[test]
    fn exact_sequence_is_the_key() {
        let mut c = ScoreCache::new(4);
        c.insert(&[1, 2], 0.5);
        assert!(c.get(&[2, 1]).is_none(), "order matters");
        assert!(c.get(&[1, 2, 2]).is_none(), "multiplicity matters");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ScoreCache::new(0);
        c.insert(&[1], 0.9);
        assert!(c.get(&[1]).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn churn_keeps_list_and_map_consistent() {
        let mut c = ScoreCache::new(3);
        for i in 0..50u32 {
            c.insert(&[i, i + 1], i as f32);
            assert!(c.len() <= 3);
            // The freshest entry always hits.
            assert_eq!(c.get(&[i, i + 1]).unwrap(), i as f32);
        }
        // Exactly the 3 newest survive.
        assert!(c.get(&[49, 50]).is_some());
        assert!(c.get(&[48, 49]).is_some());
        assert!(c.get(&[47, 48]).is_some());
        assert!(c.get(&[46, 47]).is_none());
    }
}
