//! Anomaly reports and delivery sinks (§VI-A "Report": "Reports are sent
//! to operations engineers via SMS and email").

use parking_lot::Mutex;
use std::sync::Arc;

/// A detection report: the sequence, its interpretations, and metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Originating system.
    pub system: String,
    /// Model probability.
    pub probability: f32,
    /// Timestamp of the window's first log.
    pub start_timestamp: u64,
    /// Timestamp of the window's last log.
    pub end_timestamp: u64,
    /// Ingestion sequence number of the first log.
    pub first_seq_no: u64,
    /// Raw messages of the window.
    pub messages: Vec<String>,
    /// LEI interpretations of the window's events.
    pub interpretations: Vec<String>,
    /// Interpretation of the highest-saliency event (leave-one-out),
    /// if the detector computed one.
    pub culprit: Option<String>,
}

impl Report {
    /// Renders the operator-facing alert text (the email body).
    pub fn render(&self) -> String {
        let mut s = format!(
            "[ANOMALY] system={} p={:.2} window={}..{} seq={}\n",
            self.system,
            self.probability,
            self.start_timestamp,
            self.end_timestamp,
            self.first_seq_no
        );
        if let Some(c) = &self.culprit {
            s.push_str(&format!("  cause: {c}\n"));
        }
        for (m, i) in self.messages.iter().zip(&self.interpretations) {
            s.push_str(&format!("  {m}\n    -> {i}\n"));
        }
        s
    }

    /// Renders the SMS-length summary: the culprit event (leave-one-out
    /// saliency) when known, else the first interpretation.
    pub fn render_sms(&self) -> String {
        let head = self
            .culprit
            .as_deref()
            .or_else(|| {
                self.interpretations
                    .iter()
                    .find(|i| !i.is_empty())
                    .map(|s| s.as_str())
            })
            .unwrap_or("anomalous log sequence");
        let mut text = format!("[{}] {head} (p={:.2})", self.system, self.probability);
        text.truncate(160);
        text
    }
}

/// Destination for reports.
pub trait ReportSink: Send {
    /// Delivers one report.
    fn deliver(&self, report: &Report);
}

/// Collects reports in memory (tests, examples, and the bench harness).
#[derive(Clone, Default)]
pub struct MemorySink {
    reports: Arc<Mutex<Vec<Report>>>,
}

impl MemorySink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reports delivered so far.
    pub fn reports(&self) -> Vec<Report> {
        self.reports.lock().clone()
    }

    /// Number delivered.
    pub fn len(&self) -> usize {
        self.reports.lock().len()
    }

    /// True when nothing was delivered.
    pub fn is_empty(&self) -> bool {
        self.reports.lock().is_empty()
    }
}

impl ReportSink for MemorySink {
    fn deliver(&self, report: &Report) {
        self.reports.lock().push(report.clone());
    }
}

/// Formats reports as SMS+email strings into an in-memory outbox,
/// standing in for the gateway integrations.
#[derive(Clone, Default)]
pub struct MessagingSink {
    outbox: Arc<Mutex<Vec<(String, String)>>>,
}

impl MessagingSink {
    /// Empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// (sms, email) pairs sent so far.
    pub fn outbox(&self) -> Vec<(String, String)> {
        self.outbox.lock().clone()
    }
}

impl ReportSink for MessagingSink {
    fn deliver(&self, report: &Report) {
        self.outbox
            .lock()
            .push((report.render_sms(), report.render()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Report {
        Report {
            system: "System B".into(),
            probability: 0.93,
            start_timestamp: 100,
            end_timestamp: 110,
            first_seq_no: 42,
            messages: vec!["raw log".into()],
            interpretations: vec!["disk device failed with unrecoverable input output error".into()],
            culprit: Some("disk device failed with unrecoverable input output error".into()),
        }
    }

    #[test]
    fn email_contains_interpretation_and_metadata() {
        let r = report().render();
        assert!(r.contains("System B"));
        assert!(r.contains("p=0.93"));
        assert!(r.contains("disk device failed"));
        assert!(r.contains("raw log"));
    }

    #[test]
    fn sms_is_bounded() {
        let mut r = report();
        r.culprit = Some("x".repeat(500));
        assert!(r.render_sms().len() <= 160);
    }

    #[test]
    fn sms_prefers_culprit() {
        let mut r = report();
        r.interpretations = vec!["boring normal line".into()];
        r.culprit = Some("kernel panic halted the node".into());
        assert!(r.render_sms().contains("kernel panic"));
    }

    #[test]
    fn sinks_collect() {
        let mem = MemorySink::new();
        mem.deliver(&report());
        assert_eq!(mem.len(), 1);
        let msg = MessagingSink::new();
        msg.deliver(&report());
        let outbox = msg.outbox();
        assert_eq!(outbox.len(), 1);
        assert!(outbox[0].0.starts_with("[System B]"));
    }
}
