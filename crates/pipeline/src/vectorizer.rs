//! Online event vectorization: Drain parsing + LEI interpretation +
//! embedding, maintained incrementally as new templates appear (§III-E:
//! "When a new log event appears, LogSynergy maps the new log event into
//! an event embedding").

use logsynergy_embed::HashedEmbedder;
use logsynergy_lei::{LeiConfig, LlmInterpreter, ReviewPolicy};
use logsynergy_loggen::SystemId;
use logsynergy_logparse::{Drain, DrainConfig};

/// Incremental message → (event id, embedding-table) mapper.
///
/// Cloning replicates the full template space (parser state, embedding
/// table, interpretation texts), giving each detection worker an
/// independent vectorizer that evolves with its own shard.
#[derive(Clone)]
pub struct EventVectorizer {
    drain: Drain,
    lei: LlmInterpreter,
    embedder: HashedEmbedder,
    system: SystemId,
    policy: ReviewPolicy,
    /// Template id → embedding.
    table: Vec<Vec<f32>>,
    /// Template id → interpretation text.
    texts: Vec<String>,
    /// Count of templates first seen online (after construction).
    new_templates: usize,
}

impl EventVectorizer {
    /// Creates a vectorizer for a system with the given embedding width.
    pub fn new(system: SystemId, embed_dim: usize, lei_config: LeiConfig) -> Self {
        EventVectorizer {
            drain: Drain::new(DrainConfig::default()),
            lei: LlmInterpreter::new(lei_config),
            embedder: HashedEmbedder::new(embed_dim, 0xE1B),
            system,
            policy: ReviewPolicy::default(),
            table: Vec::new(),
            texts: Vec::new(),
            new_templates: 0,
        }
    }

    /// Warm-starts the parser on historical messages (offline phase), so
    /// online detection starts with the trained template space.
    pub fn warm_start<'a>(&mut self, messages: impl IntoIterator<Item = &'a str>) {
        for m in messages {
            self.ingest(m);
        }
        self.new_templates = 0;
    }

    /// Parses one message, returning its event id; new templates are
    /// interpreted and embedded on the fly.
    pub fn ingest(&mut self, message: &str) -> u32 {
        let parsed = self.drain.parse(message);
        let id = parsed.event.0 as usize;
        while self.table.len() <= id {
            let tid = self.table.len();
            let template = self
                .drain
                .template(logsynergy_logparse::EventId(tid as u32))
                .text();
            let (interps, _) = logsynergy_lei::interpret_with_review(
                &self.lei,
                self.system,
                std::slice::from_ref(&template),
                &self.policy,
            );
            let text = interps
                .into_iter()
                .next()
                .map(|i| i.text)
                .unwrap_or_default();
            self.table.push(self.embedder.embed(&text));
            self.texts.push(text);
            self.new_templates += 1;
        }
        // The merge may have changed an existing template's text; embeddings
        // are refreshed lazily only for brand-new ids, which matches the
        // deployed system (interpretations are generated per template once).
        parsed.event.0
    }

    /// The embedding table (template id → vector).
    pub fn table(&self) -> &[Vec<f32>] {
        &self.table
    }

    /// Interpretation text for a template id. An id this vectorizer never
    /// issued (possible only if callers mix ids across vectorizers) maps
    /// to a placeholder instead of panicking mid-report.
    pub fn text(&self, id: u32) -> &str {
        self.texts
            .get(id as usize)
            .map(String::as_str)
            .unwrap_or("<unknown event>")
    }

    /// Number of templates interpreted after warm start.
    pub fn new_templates(&self) -> usize {
        self.new_templates
    }

    /// Total templates known.
    pub fn num_templates(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_assigns_and_embeds_new_templates() {
        let mut v = EventVectorizer::new(SystemId::SystemB, 16, LeiConfig::default());
        let a = v.ingest("[b-netd] info session established remote lan 10.0.0.1");
        let b = v.ingest("[b-netd] info session established remote lan 10.0.0.2");
        assert_eq!(a, b, "same template after masking");
        assert_eq!(v.num_templates(), 1);
        assert_eq!(v.table()[0].len(), 16);
        let c = v.ingest("[b-iod] error drive dead offline volume 3");
        assert_ne!(a, c);
        assert_eq!(v.num_templates(), 2);
    }

    #[test]
    fn warm_start_resets_new_template_counter() {
        let mut v = EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());
        v.warm_start(["alpha beta gamma", "delta epsilon zeta"]);
        assert_eq!(v.new_templates(), 0);
        assert_eq!(v.num_templates(), 2);
        v.ingest("eta theta iota");
        assert_eq!(v.new_templates(), 1);
    }
}
