//! When does the exact-window score cache actually get main-path hits?
//!
//! The Fig. 7 benchmark records `cache_hits = 0`, and that is structural,
//! not a bug: with an *unbounded* pattern library, every exact window
//! repeat is also a pattern repeat, and the library tier answers it
//! before the cache is ever consulted. The cache earns main-path hits
//! exactly when the library forgets a pattern between occurrences —
//! i.e. when the library is bounded and churns. These tests pin both
//! regimes (see docs/serving.md, "Cache-hit regimes").

use logsynergy_lei::LeiConfig;
use logsynergy_loggen::SystemId;
use logsynergy_pipeline::{
    run_pipeline_with, EventVectorizer, MemorySink, OnlineDetector, PipelineConfig, RawLog,
    SequenceScorer, StructuredLog,
};

#[derive(Clone)]
struct StubScorer;
impl SequenceScorer for StubScorer {
    fn score(&self, events: &[u32], _table: &[Vec<f32>]) -> f32 {
        // The three cycling normal messages take event ids 0..=2; anything
        // beyond them is the injected anomaly template.
        if events.iter().any(|&e| e >= 3) {
            0.9
        } else {
            0.1
        }
    }
}

/// Structurally distinct templates (the miner collapses messages that
/// differ only in a parameter token into one event).
const KINDS: [&str; 3] = [
    "session open remote peer",
    "steady state heartbeat ping",
    "disk write completed fine",
];

/// Blocks of 5 identical messages cycling through the three templates:
/// with the 10/5 window geometry every window is a (block, block) pair,
/// so the stream revisits the same three exact windows forever.
fn block_cycle(n: u64) -> Vec<String> {
    (0..n)
        .map(|i| KINDS[(i / 5) as usize % KINDS.len()].to_string())
        .collect()
}

fn slog(i: u64, msg: &str) -> StructuredLog {
    StructuredLog {
        system: "b".into(),
        timestamp: i,
        message: msg.into(),
        seq_no: i,
    }
}

#[test]
fn unbounded_library_starves_the_cache() {
    let v = EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());
    let mut det = OnlineDetector::new(v, StubScorer);
    for (i, msg) in block_cycle(600).iter().enumerate() {
        det.ingest(slog(i as u64, msg));
    }
    assert_eq!(
        det.cache_hits, 0,
        "an unbounded library answers every repeat before the cache"
    );
    assert!(det.pattern_hits > 0);
    assert_eq!(det.model_calls, 3, "one model call per distinct pattern");
}

#[test]
fn bounded_library_replays_duplicated_windows_from_the_cache() {
    let v = EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());
    // Capacity 1 with a 3-pattern cycle: every pattern is evicted before
    // it recurs, so each repeat misses the library and the exact-window
    // score cache must answer it.
    let mut det = OnlineDetector::new(v, StubScorer).with_library_capacity(1);
    for (i, msg) in block_cycle(600).iter().enumerate() {
        det.ingest(slog(i as u64, msg));
    }
    assert!(
        det.cache_hits > 0,
        "evicted patterns must fall through to the score cache"
    );
    assert_eq!(
        det.model_calls, 3,
        "the cache absorbs the library's churn: the model still scores \
         each distinct window once"
    );
}

#[test]
fn bounded_library_preserves_verdicts_end_to_end() {
    // Same stream, unbounded vs tightly bounded library, through the full
    // pipeline: tier accounting shifts from pattern hits to cache hits,
    // but windows, reports, and report order are identical.
    let source: Vec<RawLog> = block_cycle(400)
        .into_iter()
        .enumerate()
        .map(|(i, msg)| {
            let message = if (120..125).contains(&i) {
                "drive volume dead offline spindle".to_string()
            } else {
                msg
            };
            RawLog {
                system: "b".into(),
                timestamp: i as u64,
                message,
            }
        })
        .collect();
    let make_v = || EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());

    let base_sink = MemorySink::new();
    let base = run_pipeline_with(
        source.clone(),
        make_v(),
        StubScorer,
        base_sink.clone(),
        PipelineConfig {
            partitions: 1,
            ..PipelineConfig::default()
        },
    );
    let sink = MemorySink::new();
    let bounded = run_pipeline_with(
        source,
        make_v(),
        StubScorer,
        sink.clone(),
        PipelineConfig {
            partitions: 1,
            library_capacity: 1,
            ..PipelineConfig::default()
        },
    );
    assert_eq!(bounded.windows, base.windows);
    assert_eq!(bounded.reports, base.reports);
    assert_eq!(sink.reports(), base_sink.reports());
    assert!(
        bounded.cache_hits > 0,
        "bounded run must exercise the cache"
    );
    assert_eq!(base.cache_hits, 0, "unbounded run never reaches the cache");
    assert_eq!(
        bounded.pattern_hits + bounded.cache_hits + bounded.model_calls,
        base.pattern_hits + base.cache_hits + base.model_calls,
        "tier totals shift between tiers, never in sum"
    );
}
