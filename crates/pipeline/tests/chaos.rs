//! Deterministic chaos tests for the serving pipeline's robustness layer.
//!
//! Every test installs a seeded `FaultPlan` (so the fault schedule is a
//! pure function of the plan, reproducible run over run) and asserts the
//! recovery contract from `docs/robustness.md`:
//!
//! - **liveness** — the pipeline drains a finite stream to completion no
//!   matter which plan is armed (the CI harness adds a 60 s timeout);
//! - **no lost windows** — processed + quarantined == ingested: the six
//!   resolution buckets exactly partition the window count of a no-fault
//!   run over the same stream;
//! - **telemetry conservation** — the global counters agree with the
//!   summary, under faults included;
//! - **bitwise determinism** — a run whose injected faults are all
//!   transient (retryable errors, latency, corrupt-then-retried scores)
//!   reproduces the no-fault verdict stream bit for bit.
//!
//! Fault plans are process-global, so every test serializes on
//! `faults::test_lock()`.

#![cfg(feature = "fault-injection")]

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use logsynergy::model::LogSynergyModel;
use logsynergy::ModelConfig;
use logsynergy_lei::LeiConfig;
use logsynergy_loggen::SystemId;
use logsynergy_pipeline::faults::{points, test_lock, FaultPlan, FaultSpec};
use logsynergy_pipeline::{
    run_pipeline_with, start_durable, DurablePipeline, EventVectorizer, MemorySink, ModelScorer,
    PipelineConfig, PipelineSummary, RawLog, Report, SequenceScorer, WalOptions,
};
use logsynergy_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;

const EMBED_DIM: usize = 8;

fn tiny_model(seed: u64) -> Arc<LogSynergyModel> {
    let config = ModelConfig {
        embed_dim: EMBED_DIM,
        d_model: 8,
        heads: 2,
        ff: 16,
        layers: 1,
        max_len: 10,
        dropout: 0.0,
        head_hidden: 8,
        num_systems: 2,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(LogSynergyModel::new(config, &mut rng))
}

fn vectorizer() -> EventVectorizer {
    EventVectorizer::new(SystemId::SystemB, EMBED_DIM, LeiConfig::default())
}

/// A steady stream with a distinct injected fault message every 10 logs,
/// so model-tier misses (and anomalies) occur throughout the run.
fn variant_stream(n: u64) -> Vec<RawLog> {
    const FAULTS: [&str; 16] = [
        "disk", "fan", "nic", "psu", "dimm", "cpu", "raid", "link", "pump", "bmc", "gpu", "ssd",
        "port", "rack", "node", "bus",
    ];
    (0..n)
        .map(|i| {
            let message = if i >= 12 && (i - 12) % 10 == 0 {
                let fault = FAULTS[((i - 12) / 10) as usize % FAULTS.len()];
                format!("{fault} subsystem failure isolated offline")
            } else {
                "session open remote peer lan".to_string()
            };
            RawLog {
                system: "b".into(),
                timestamp: i,
                message,
            }
        })
        .collect()
}

/// Single-shard serving config with a small deterministic batch cadence
/// and fast retry backoff (keeps chaos runs well under the CI timeout).
fn chaos_config() -> PipelineConfig {
    PipelineConfig {
        partitions: 1,
        batch_windows: 4,
        max_retries: 2,
        retry_backoff: Duration::from_micros(200),
        batch_deadline: Duration::from_millis(2),
        ..PipelineConfig::default()
    }
}

fn run(
    source: &[RawLog],
    model: &Arc<LogSynergyModel>,
    config: PipelineConfig,
) -> (PipelineSummary, Vec<Report>) {
    let sink = MemorySink::new();
    let summary = run_pipeline_with(
        source.to_vec(),
        vectorizer(),
        ModelScorer::shared(model.clone()),
        sink.clone(),
        config,
    );
    let reports = sink.reports();
    (summary, reports)
}

/// Injected panics are expected noise here; silence the default hook's
/// stderr backtraces for the duration of a pipeline run.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

fn assert_conserved(s: &PipelineSummary, baseline_windows: u64, label: &str) {
    assert_eq!(
        s.pattern_hits + s.cache_hits + s.model_calls + s.degraded + s.shed + s.quarantined,
        s.windows,
        "{label}: resolution buckets must partition the window count: {s:?}"
    );
    assert_eq!(
        s.windows, baseline_windows,
        "{label}: no window may be lost or double counted under faults: {s:?}"
    );
}

fn assert_reports_bitwise_equal(a: &[Report], b: &[Report], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: report count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            x.probability.to_bits(),
            y.probability.to_bits(),
            "{label}: probability must be bitwise identical"
        );
        assert_eq!(x, y, "{label}: full report");
    }
}

#[test]
fn worker_panic_storm_quarantines_batches_without_losing_windows() {
    let _l = test_lock();
    let model = tiny_model(42);
    let source = variant_stream(200);
    let (baseline, _) = run(&source, &model, chaos_config());
    assert!(baseline.windows > 0 && baseline.reports > 0, "{baseline:?}");

    let tele_before = telemetry::global().snapshot();
    // Every model-tier call panics until 6 fires are spent. With
    // max_retries = 2 (three attempts per batch), exactly the first two
    // model-reaching batches exhaust their budget and are quarantined;
    // everything after runs clean.
    let guard = FaultPlan::seeded(7)
        .arm(points::MODEL_SCORE, FaultSpec::panic().max_fires(6))
        .install();
    let (summary, reports) = with_quiet_panics(|| run(&source, &model, chaos_config()));
    assert_eq!(guard.fires(points::MODEL_SCORE), 6, "panic budget consumed");
    drop(guard);
    let tele_after = telemetry::global().snapshot();

    assert_conserved(&summary, baseline.windows, "panic storm");
    assert!(
        summary.quarantined > 0,
        "twice-faulted batches must quarantine: {summary:?}"
    );
    assert_eq!(
        summary.dead_letters.len() as u64,
        summary.quarantined,
        "one dead letter per quarantined window"
    );
    assert_eq!(
        summary.worker_restarts, 6,
        "each injected panic is one isolated restart: {summary:?}"
    );
    assert!(
        !reports.is_empty(),
        "the pipeline must stay live and keep reporting after the storm"
    );
    for dl in &summary.dead_letters {
        assert_eq!(dl.system, "b");
        assert!(dl.reason.contains("panic-retry budget"), "{dl:?}");
    }

    // Telemetry conservation: the global counters tell the same story.
    if telemetry::enabled() {
        let d = |name: &str| tele_after.counter_delta(&tele_before, name);
        assert_eq!(d("pipeline.logs"), summary.logs);
        assert_eq!(d("pipeline.quarantined"), summary.quarantined);
        assert_eq!(d("pipeline.worker.restarts"), summary.worker_restarts);
        assert_eq!(
            d("pipeline.tier.pattern")
                + d("pipeline.tier.cache")
                + d("pipeline.tier.model")
                + d("pipeline.degraded")
                + d("pipeline.shed")
                + d("pipeline.quarantined"),
            d("pipeline.windows"),
            "telemetry buckets must partition the telemetry window count"
        );
        assert_eq!(d("pipeline.windows"), summary.windows);
    }
}

#[test]
fn model_brownout_retries_to_bitwise_identical_verdicts() {
    let _l = test_lock();
    let model = tiny_model(42);
    let source = variant_stream(200);
    let (baseline, baseline_reports) = run(&source, &model, chaos_config());
    assert!(baseline.reports > 0, "{baseline:?}");

    // Transient-only plan: a model brownout (first two calls fail), a
    // corrupt score the validator must catch and retry, flaky cache
    // lookups (forced misses), a drain hiccup, and producer-side latency.
    // All of it is retryable, so the verdict stream must be bit-identical
    // to the no-fault run.
    let config = PipelineConfig {
        max_retries: 4,
        ..chaos_config()
    };
    let guard = FaultPlan::seeded(11)
        .arm(points::MODEL_SCORE, FaultSpec::transient().max_fires(2))
        .arm(
            points::MODEL_SCORE,
            FaultSpec::corrupt_score().after(2).max_fires(1),
        )
        .arm(
            points::CACHE_LOOKUP,
            FaultSpec::transient().with_probability(0.25),
        )
        .arm(points::BATCH_DRAIN, FaultSpec::transient().max_fires(3))
        .arm(
            points::BUFFER_PUSH,
            FaultSpec::latency(Duration::from_micros(100)).with_probability(0.05),
        )
        .install();
    let (summary, reports) = run(&source, &model, config);
    assert!(guard.fires(points::MODEL_SCORE) >= 3, "brownout must fire");
    drop(guard);

    assert_conserved(&summary, baseline.windows, "brownout");
    assert_eq!(summary.quarantined, 0, "{summary:?}");
    assert_eq!(summary.degraded, 0, "transient faults must not degrade");
    assert_eq!(summary.shed, 0, "{summary:?}");
    assert!(
        summary.retries >= 3,
        "transient failures are retried: {summary:?}"
    );
    assert_eq!(summary.logs, baseline.logs);
    assert_eq!(summary.reports, baseline.reports);
    assert_reports_bitwise_equal(&reports, &baseline_reports, "brownout vs no-fault");
}

#[test]
fn persistent_model_outage_degrades_instead_of_wedging() {
    let _l = test_lock();
    let model = tiny_model(42);
    let source = variant_stream(200);
    let (baseline, _) = run(&source, &model, chaos_config());

    // The model tier never answers: every miss must degrade to the cheap
    // tiers (no verdict, no report) — and the pipeline still drains.
    let guard = FaultPlan::seeded(3)
        .arm(points::MODEL_SCORE, FaultSpec::transient())
        .install();
    let (summary, reports) = run(&source, &model, chaos_config());
    drop(guard);

    assert_conserved(&summary, baseline.windows, "outage");
    assert_eq!(summary.model_calls, 0, "nothing can be model-scored");
    assert_eq!(summary.quarantined, 0, "{summary:?}");
    assert!(
        reports.is_empty(),
        "degraded windows carry no verdict, so no reports"
    );
    // Degraded windows are never memorized (no verdict), so under a
    // total outage every single window falls through to degradation —
    // and each one keeps its fresh chance at the model tier for when
    // the outage ends.
    assert_eq!(
        summary.degraded, summary.windows,
        "every miss must degrade, none may wedge: {summary:?}"
    );
    assert!(summary.retries > 0, "{summary:?}");
}

// ————— durable kill-and-recover storm —————

/// Eight structurally distinct messages (no shared tokens between
/// same-length pairs, identical to the durable continuity suite) so the
/// template space is fixed after warm start and the same in every run.
const WAL_VOCAB: [&str; 8] = [
    "session opened for user root",
    "connection from remote peer closed abruptly after handshake timeout",
    "disk write latency elevated beyond configured threshold on volume data1",
    "packet responder terminating early",
    "cache eviction pass completed",
    "replica placement policy satisfied for block",
    "authentication failure reported by gateway node",
    "heartbeat missed twice across consecutive intervals",
];

/// Key-pure scorer: the verdict depends only on the window's *distinct*
/// event set — the pattern library's key granularity — so verdicts
/// survive a restart's empty library bitwise (see `tests/durable.rs`).
#[derive(Clone)]
struct KeyScorer;
impl SequenceScorer for KeyScorer {
    fn score(&self, events: &[u32], table: &[Vec<f32>]) -> f32 {
        let mut distinct = events.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut acc = 0.0f32;
        for &e in &distinct {
            for v in &table[e as usize] {
                acc += v.abs();
            }
        }
        (acc - acc.floor()).clamp(0.0, 1.0)
    }
}

fn warm_vectorizer() -> EventVectorizer {
    let mut v = EventVectorizer::new(SystemId::SystemB, EMBED_DIM, LeiConfig::default());
    v.warm_start(WAL_VOCAB.iter().copied());
    v
}

/// Nine seeded kill-and-recover rounds over the write-ahead log, three
/// per crash site: the record append / cursor commit (a process killed
/// mid-ingest), the segment roll (killed between closing one segment
/// and opening the next), and mid-recovery on the restart itself. Each
/// round feeds until the crash lands, joins what survived, restarts
/// over the same directory, feeds the rest, and asserts the cumulative
/// accounting and verdicts are exactly the unfaulted single run's.
#[test]
fn wal_kill_and_recover_storm_preserves_exactly_once_accounting() {
    let _l = test_lock();
    let n = 200usize;
    let stream: Vec<RawLog> = (0..n)
        .map(|i| RawLog {
            system: "b".into(),
            timestamp: i as u64,
            message: WAL_VOCAB[(i * 7 + i / 4) % WAL_VOCAB.len()].to_string(),
        })
        .collect();

    let baseline_sink = MemorySink::new();
    let baseline = run_pipeline_with(
        stream.clone(),
        warm_vectorizer(),
        KeyScorer,
        baseline_sink.clone(),
        PipelineConfig {
            partitions: 1,
            batch_windows: 4,
            batch_deadline: Duration::from_millis(2),
            ..PipelineConfig::default()
        },
    );
    assert!(baseline.windows > 0 && baseline.reports > 0, "{baseline:?}");
    let baseline_reports = baseline_sink.reports();

    for seed in 0..9u64 {
        let dir = std::env::temp_dir().join(format!("lswal-storm-{seed}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = PipelineConfig {
            partitions: 1,
            batch_windows: 4,
            batch_deadline: Duration::from_millis(2),
            wal: Some(WalOptions {
                // Tiny segments so every round crosses roll boundaries
                // and the roll-crash rounds have rolls to land on.
                segment_max_bytes: 2048,
                ..WalOptions::at(dir.clone())
            }),
            ..PipelineConfig::default()
        };
        let scenario = seed % 3;

        // Phase 1: feed with a seeded one-shot crash armed. The panic
        // lands wherever the schedule puts it — the producer's append
        // (the send below dies) or a worker's cursor commit (the worker
        // dies and the rest of the stream parks durably); both must
        // recover identically.
        let sink1 = MemorySink::new();
        let sent_ok = with_quiet_panics(|| {
            let durable = start_durable(warm_vectorizer(), KeyScorer, sink1.clone(), &cfg)
                .expect("a fresh log directory must open");
            let (point, spec) = match scenario {
                0 => (
                    points::WAL_APPEND,
                    FaultSpec::panic().after(5 + seed * 7).max_fires(1),
                ),
                1 => (
                    points::WAL_ROLL,
                    FaultSpec::panic().after(seed % 4).max_fires(1),
                ),
                _ => (
                    points::WAL_APPEND,
                    FaultSpec::panic().after(3 + seed * 5).max_fires(1),
                ),
            };
            let guard = FaultPlan::seeded(seed).arm(point, spec).install();
            let mut sent = 0usize;
            for log in &stream {
                match catch_unwind(AssertUnwindSafe(|| durable.producer.send(log.clone()))) {
                    Ok(Ok(())) => sent += 1,
                    Ok(Err(_)) | Err(_) => break,
                }
            }
            let DurablePipeline { pool, producer, .. } = durable;
            drop(producer);
            let _ = pool.join();
            assert_eq!(
                guard.fires(point),
                1,
                "seed {seed}: the armed crash must fire"
            );
            drop(guard);
            sent
        });

        // Phase 2: restart over the same directory. Rounds 2 mod 3 also
        // crash the restart itself mid-recovery; recovery is read-only,
        // so the retried start must succeed unaided.
        let sink2 = MemorySink::new();
        let second = with_quiet_panics(|| {
            let recover_guard = (scenario == 2).then(|| {
                FaultPlan::seeded(seed)
                    .arm(points::WAL_RECOVER, FaultSpec::panic().max_fires(1))
                    .install()
            });
            let first_try = catch_unwind(AssertUnwindSafe(|| {
                start_durable(warm_vectorizer(), KeyScorer, sink2.clone(), &cfg)
            }));
            let durable = match first_try {
                Ok(Ok(d)) => {
                    assert_ne!(scenario, 2, "seed {seed}: the recover crash must fire");
                    d
                }
                Ok(Err(e)) => panic!("seed {seed}: recovery failed typed: {e}"),
                Err(_) => start_durable(warm_vectorizer(), KeyScorer, sink2.clone(), &cfg)
                    .expect("retried recovery must succeed"),
            };
            drop(recover_guard);
            for log in &stream[sent_ok..] {
                durable
                    .producer
                    .send(log.clone())
                    .expect("unfaulted send must land");
            }
            let DurablePipeline { pool, producer, .. } = durable;
            drop(producer);
            pool.join()
        });

        // Exactly once, cumulatively: every record of the full stream is
        // accounted for in some bucket, none lost, none double counted.
        assert_eq!(second.logs, n as u64, "seed {seed}: cumulative log count");
        assert_conserved(&second, baseline.windows, &format!("storm seed {seed}"));
        assert_eq!(second.degraded, 0, "seed {seed}: {second:?}");
        assert_eq!(second.shed, 0, "seed {seed}: {second:?}");
        assert_eq!(second.quarantined, 0, "seed {seed}: {second:?}");
        assert_eq!(
            second.reports, baseline.reports,
            "seed {seed}: the cursor-resumed report count is exactly once: {second:?}"
        );

        // Report *delivery* is at-least-once — a crash between a batch's
        // delivery and its cursor commit redelivers that batch — so the
        // combined stream deduplicates by window identity and must then
        // equal the unfaulted run bit for bit.
        let mut seen = HashSet::new();
        let mut deduped: Vec<Report> = Vec::new();
        for r in sink1.reports().into_iter().chain(sink2.reports()) {
            if seen.insert((r.system.clone(), r.first_seq_no)) {
                deduped.push(r);
            }
        }
        assert_reports_bitwise_equal(&deduped, &baseline_reports, &format!("storm seed {seed}"));

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Group-commit failure semantics at the pipeline layer, both flavors
/// of a fault landing mid-`send_batch`:
///
/// - a *transient append error* hands back exactly the unwritten
///   suffix (the durable prefix is already enqueued — WAL order ==
///   buffer order), and retrying that suffix yields the unfaulted
///   run's verdicts bit for bit;
/// - a *crash* (panic) mid-batch kills the producer with the batch
///   unacked; a restart over the same directory replays the durable
///   records and re-feeding the unacked tail reproduces the baseline
///   accounting and reports exactly once.
#[test]
fn mid_batch_append_faults_keep_exactly_once_accounting() {
    let _l = test_lock();
    const BATCH: usize = 16;
    let n = 200usize;
    let stream: Vec<RawLog> = (0..n)
        .map(|i| RawLog {
            system: "b".into(),
            timestamp: i as u64,
            message: WAL_VOCAB[(i * 7 + i / 4) % WAL_VOCAB.len()].to_string(),
        })
        .collect();

    let baseline_sink = MemorySink::new();
    let baseline = run_pipeline_with(
        stream.clone(),
        warm_vectorizer(),
        KeyScorer,
        baseline_sink.clone(),
        PipelineConfig {
            partitions: 1,
            batch_windows: 4,
            batch_deadline: Duration::from_millis(2),
            ..PipelineConfig::default()
        },
    );
    let baseline_reports = baseline_sink.reports();

    // Worker cursor commits consult the same WAL_APPEND point as the
    // producer's appends; a lazy drain cadence (huge window batch, long
    // deadline) keeps any commit far behind the sub-millisecond feed, so
    // the armed fire deterministically lands in `send_batch`. Verdicts
    // are batching-invariant, so the baseline still compares bitwise.
    let wal_config = |dir: &std::path::Path, segment_max_bytes: u64| PipelineConfig {
        partitions: 1,
        batch_windows: 1024,
        batch_deadline: Duration::from_millis(300),
        wal: Some(WalOptions {
            segment_max_bytes,
            ..WalOptions::at(dir.to_path_buf())
        }),
        ..PipelineConfig::default()
    };

    // Flavor 1: transient append error mid-batch. Tiny segments so the
    // failing batch can straddle a roll — the durably-flushed prefix
    // ahead of the fault must be enqueued, the suffix handed back.
    {
        let dir = std::env::temp_dir().join(format!("lswal-midbatch-err-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sink = MemorySink::new();
        let durable = start_durable(
            warm_vectorizer(),
            KeyScorer,
            sink.clone(),
            &wal_config(&dir, 2048),
        )
        .expect("a fresh log directory must open");
        let guard = FaultPlan::seeded(21)
            .arm(
                points::WAL_APPEND,
                // Land inside the sixth batch (after 5*BATCH + 7 append
                // consults), once.
                FaultSpec::transient()
                    .after(5 * BATCH as u64 + 7)
                    .max_fires(1),
            )
            .install();
        let mut retried = 0usize;
        for chunk in stream.chunks(BATCH) {
            let mut batch = chunk.to_vec();
            loop {
                match durable.producer.send_batch(0, batch) {
                    Ok(sent) => {
                        assert!(sent <= BATCH);
                        break;
                    }
                    Err((rest, e)) => {
                        assert!(e.is_transient(), "append failure must be retryable: {e}");
                        assert!(
                            !rest.is_empty() && rest.len() <= BATCH,
                            "exactly the unwritten suffix comes back, got {}",
                            rest.len()
                        );
                        retried += rest.len();
                        batch = rest;
                    }
                }
            }
        }
        assert_eq!(
            guard.fires(points::WAL_APPEND),
            1,
            "the armed fault must fire"
        );
        drop(guard);
        assert!(retried > 0, "the fault must hand back a suffix to retry");
        let DurablePipeline { pool, producer, .. } = durable;
        drop(producer);
        let summary = pool.join();
        assert_eq!(summary.logs, n as u64, "retried suffix lands exactly once");
        assert_conserved(&summary, baseline.windows, "mid-batch transient");
        assert_reports_bitwise_equal(&sink.reports(), &baseline_reports, "mid-batch transient");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Flavor 2: crash (panic) mid-batch, then restart. Large segments
    // so no roll flushes a partial chunk of the dying batch — every
    // record of a completed `send_batch` is durable, nothing of the
    // killed one is, and the restart feed is exactly `stream[sent..]`.
    // (Mid-batch tears across roll boundaries are pinned at the WAL
    // layer by the torn-tail proptests.)
    {
        let dir = std::env::temp_dir().join(format!("lswal-midbatch-kill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = wal_config(&dir, 1 << 20);

        let sink1 = MemorySink::new();
        let sent = with_quiet_panics(|| {
            let durable = start_durable(warm_vectorizer(), KeyScorer, sink1.clone(), &cfg)
                .expect("a fresh log directory must open");
            let guard = FaultPlan::seeded(23)
                .arm(
                    points::WAL_APPEND,
                    FaultSpec::panic().after(4 * BATCH as u64 + 11).max_fires(1),
                )
                .install();
            let mut sent = 0usize;
            for chunk in stream.chunks(BATCH) {
                match catch_unwind(AssertUnwindSafe(|| {
                    durable.producer.send_batch(0, chunk.to_vec())
                })) {
                    Ok(Ok(k)) => sent += k,
                    Ok(Err(_)) | Err(_) => break,
                }
            }
            assert_eq!(
                guard.fires(points::WAL_APPEND),
                1,
                "the armed crash must fire"
            );
            drop(guard);
            let DurablePipeline { pool, producer, .. } = durable;
            drop(producer);
            let _ = pool.join();
            sent
        });
        assert_eq!(sent % BATCH, 0, "only whole batches ack before the crash");
        assert!(sent > 0 && sent < n, "the crash must land mid-stream");

        let sink2 = MemorySink::new();
        let durable = start_durable(warm_vectorizer(), KeyScorer, sink2.clone(), &cfg)
            .expect("restart over the crashed directory must recover");
        for chunk in stream[sent..].chunks(BATCH) {
            durable
                .producer
                .send_batch(0, chunk.to_vec())
                .expect("unfaulted batch must land");
        }
        let DurablePipeline { pool, producer, .. } = durable;
        drop(producer);
        let second = pool.join();

        assert_eq!(second.logs, n as u64, "cumulative log count");
        assert_conserved(&second, baseline.windows, "mid-batch crash");
        // Delivery is at-least-once across the crash; counting is
        // exactly-once after dedupe by window identity.
        let mut seen = HashSet::new();
        let mut deduped: Vec<Report> = Vec::new();
        for r in sink1.reports().into_iter().chain(sink2.reports()) {
            if seen.insert((r.system.clone(), r.first_seq_no)) {
                deduped.push(r);
            }
        }
        assert_reports_bitwise_equal(&deduped, &baseline_reports, "mid-batch crash");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn slow_consumer_backpressure_sheds_to_cheap_tiers() {
    let _l = test_lock();
    let model = tiny_model(42);
    let source = variant_stream(400);
    let config = PipelineConfig {
        partition_capacity: 64,
        shed_watermark: 32,
        ..chaos_config()
    };
    let (baseline, _) = run(&source, &model, config.clone());

    // Every drain stalls 3 ms, so the bounded queue saturates and depth
    // sits above the watermark: the worker must shed to the cheap tiers
    // instead of letting the model tier melt.
    let guard = FaultPlan::seeded(5)
        .arm(
            points::BATCH_DRAIN,
            FaultSpec::latency(Duration::from_millis(3)),
        )
        .install();
    let (summary, _) = run(&source, &model, config);
    drop(guard);

    assert_conserved(&summary, baseline.windows, "backpressure");
    assert!(
        summary.shed > 0,
        "over-watermark batches must shed: {summary:?}"
    );
    assert_eq!(summary.quarantined, 0, "{summary:?}");
    assert_eq!(summary.degraded, 0, "{summary:?}");
    // Shed batches skip the model tier, so model calls can only drop —
    // but *which* batches shed is scheduling-dependent, and a shed batch
    // the pattern/cache tiers would have answered anyway spares nothing,
    // so equality is a legitimate outcome.
    assert!(
        summary.model_calls <= baseline.model_calls,
        "shedding must spare the model tier: {} !<= {}",
        summary.model_calls,
        baseline.model_calls
    );
}
