//! Determinism contract of the batched serving path, checked against a
//! real (randomly initialized, untrained — the forward is what matters)
//! LogSynergy model: micro-batching, the window-score cache, and
//! partition-sharded workers change throughput, never results. Every
//! configuration must reproduce the unbatched single-worker run bit for
//! bit.

use logsynergy::model::LogSynergyModel;
use logsynergy::ModelConfig;
use logsynergy_lei::LeiConfig;
use logsynergy_loggen::SystemId;
use logsynergy_pipeline::{
    run_pipeline_with, EventVectorizer, MemorySink, ModelScorer, OnlineDetector, PipelineConfig,
    RawLog, Report, StructuredLog,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const EMBED_DIM: usize = 8;

fn tiny_model(seed: u64) -> Arc<LogSynergyModel> {
    let config = ModelConfig {
        embed_dim: EMBED_DIM,
        d_model: 8,
        heads: 2,
        ff: 16,
        layers: 1,
        max_len: 10,
        dropout: 0.0,
        head_hidden: 8,
        num_systems: 2,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(LogSynergyModel::new(config, &mut rng))
}

fn vectorizer() -> EventVectorizer {
    EventVectorizer::new(SystemId::SystemB, EMBED_DIM, LeiConfig::default())
}

/// A steady stream of one normal template with a distinct injected
/// message every 10 logs. Each injection yields a window of nine normal
/// events plus one unique event — distinct patterns whose leave-one-out
/// probes all share the same reduced window, the score cache's bread and
/// butter.
fn variant_stream(n: u64) -> Vec<RawLog> {
    // Distinct leading words so Drain assigns each fault its own template
    // (a shared prefix with one varying token would be masked into one).
    const FAULTS: [&str; 16] = [
        "disk", "fan", "nic", "psu", "dimm", "cpu", "raid", "link", "pump", "bmc", "gpu", "ssd",
        "port", "rack", "node", "bus",
    ];
    (0..n)
        .map(|i| {
            let message = if i >= 12 && (i - 12) % 10 == 0 {
                let fault = FAULTS[((i - 12) / 10) as usize % FAULTS.len()];
                format!("{fault} subsystem failure isolated offline")
            } else {
                "session open remote peer lan".to_string()
            };
            RawLog {
                system: "b".into(),
                timestamp: i,
                message,
            }
        })
        .collect()
}

fn assert_reports_bitwise_equal(a: &[Report], b: &[Report], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: report count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            x.probability.to_bits(),
            y.probability.to_bits(),
            "{label}: probability must be bitwise identical"
        );
        assert_eq!(x, y, "{label}: full report");
    }
}

#[test]
fn batched_sharded_cached_runs_match_unbatched_bitwise() {
    let model = tiny_model(42);
    let source = variant_stream(170);

    let baseline_sink = MemorySink::new();
    let baseline = run_pipeline_with(
        source.clone(),
        vectorizer(),
        ModelScorer::shared(model.clone()),
        baseline_sink.clone(),
        PipelineConfig::unbatched(),
    );
    assert!(
        baseline.reports > 0,
        "the stream must trip the model: {baseline:?}"
    );

    let variants = [
        ("defaults", PipelineConfig::default()),
        (
            "small batches, two shards",
            PipelineConfig {
                partitions: 2,
                batch_windows: 4,
                ..PipelineConfig::default()
            },
        ),
        (
            "batching without cache",
            PipelineConfig {
                score_cache: 0,
                ..PipelineConfig::default()
            },
        ),
    ];
    for (label, config) in variants {
        let sink = MemorySink::new();
        let s = run_pipeline_with(
            source.clone(),
            vectorizer(),
            ModelScorer::shared(model.clone()),
            sink.clone(),
            config,
        );
        assert_eq!(s.logs, baseline.logs, "{label}");
        assert_eq!(s.windows, baseline.windows, "{label}");
        assert_eq!(s.pattern_hits, baseline.pattern_hits, "{label}");
        assert_eq!(
            s.model_calls + s.cache_hits,
            baseline.model_calls,
            "{label}: cache hits replace model calls one for one"
        );
        assert_eq!(s.reports, baseline.reports, "{label}");
        assert_reports_bitwise_equal(&sink.reports(), &baseline_sink.reports(), label);
    }
}

#[test]
fn cache_hits_return_bitwise_identical_scores() {
    let model = tiny_model(42);
    let stream: Vec<StructuredLog> = variant_stream(170)
        .into_iter()
        .enumerate()
        .map(|(i, raw)| StructuredLog {
            system: raw.system,
            timestamp: raw.timestamp,
            message: raw.message,
            seq_no: i as u64,
        })
        .collect();

    // Micro-batches of 20 logs: the leave-one-out probes of later batches
    // repeat reduced windows first scored in earlier batches, which only
    // the cache can answer (in-batch repeats dedupe without it).
    let run = |cache: usize| {
        let mut det = OnlineDetector::new(vectorizer(), ModelScorer::shared(model.clone()))
            .with_cache_capacity(cache);
        let mut reports = Vec::new();
        for chunk in stream.chunks(20) {
            det.ingest_batch(chunk.to_vec(), &mut reports);
        }
        (reports, det.cache_stats().0)
    };

    let (cold_reports, cold_cache_hits) = run(0);
    let (warm_reports, warm_cache_hits) = run(4096);

    assert_eq!(cold_cache_hits, 0, "disabled cache never hits");
    assert!(
        warm_cache_hits > 0,
        "shared leave-one-out probes must hit the cache"
    );
    assert_reports_bitwise_equal(&warm_reports, &cold_reports, "warm vs cold");
}
