use logsynergy_lei::LeiConfig;
use logsynergy_loggen::SystemId;
use logsynergy_pipeline::{
    run_pipeline_with, EventVectorizer, MemorySink, PipelineConfig, RawLog, SequenceScorer,
};

#[derive(Clone)]
struct EvenScorer;
impl SequenceScorer for EvenScorer {
    fn score(&self, events: &[u32], _t: &[Vec<f32>]) -> f32 {
        if events.iter().any(|e| e % 2 == 1) { 0.9 } else { 0.1 }
    }
}

#[test]
fn multi_tenant_cross_config_equivalence() {
    let tenants = ["tenant-a", "tenant-b", "tenant-c"];
    let source: Vec<RawLog> = (0..240u64)
        .map(|i| {
            let msg = if (90..102).contains(&i) {
                "drive volume dead offline spindle".to_string()
            } else {
                "session open remote peer lan".to_string()
            };
            RawLog { system: tenants[(i % 3) as usize].into(), timestamp: i, message: msg }
        })
        .collect();
    let make_v = || EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());

    let base_sink = MemorySink::new();
    run_pipeline_with(source.clone(), make_v(), EvenScorer, base_sink.clone(),
        PipelineConfig::unbatched());

    let sink = MemorySink::new();
    run_pipeline_with(source.clone(), make_v(), EvenScorer, sink.clone(),
        PipelineConfig::default());

    let a: Vec<_> = base_sink.reports();
    let b: Vec<_> = sink.reports();
    eprintln!("baseline reports: {}, default-config reports: {}", a.len(), b.len());
    assert_eq!(a.len(), b.len(), "report count differs across configs");
    // compare per-system sequences
    for t in tenants {
        let ra: Vec<_> = a.iter().filter(|r| r.system == t).collect();
        let rb: Vec<_> = b.iter().filter(|r| r.system == t).collect();
        assert_eq!(format!("{ra:?}"), format!("{rb:?}"), "tenant {t} reports differ");
    }
}
