//! Property tests for the deployment pipeline's invariants.

use std::time::Duration;

use logsynergy_lei::LeiConfig;
use logsynergy_loggen::SystemId;
use logsynergy_pipeline::{
    format_log, EventVectorizer, LogBuffer, OnlineDetector, PatternLibrary, RawLog, ScoreCache,
    SequenceScorer, StructuredLog, Verdict,
};
use proptest::prelude::*;

struct NeverScorer;
impl SequenceScorer for NeverScorer {
    fn score(&self, _events: &[u32], _table: &[Vec<f32>]) -> f32 {
        0.0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The library always hits after an insert, whatever the event mix,
    /// and hit/miss counters add up.
    #[test]
    fn pattern_library_is_consistent(patterns in proptest::collection::vec(
        proptest::collection::vec(0u32..30, 1..12), 1..20)
    ) {
        let mut lib = PatternLibrary::new();
        let mut lookups = 0u64;
        for p in &patterns {
            if lib.lookup(p).is_none() {
                lib.insert(p, Verdict { probability: 0.1, anomalous: false, culprit: None });
            }
            lookups += 1;
            prop_assert!(lib.lookup(p).is_some(), "insert-then-lookup must hit");
            lookups += 1;
        }
        let (hits, misses) = lib.stats();
        prop_assert_eq!(hits + misses, lookups);
        prop_assert!(lib.len() <= patterns.len());
    }

    /// The window assembler evaluates exactly the sliding-window count:
    /// one window per step once the first full window exists.
    #[test]
    fn detector_window_cadence(n in 10usize..200) {
        let v = EventVectorizer::new(SystemId::SystemB, 4, LeiConfig::default());
        let mut det = OnlineDetector::new(v, NeverScorer);
        for i in 0..n {
            det.ingest(StructuredLog {
                system: "x".into(),
                timestamp: i as u64,
                message: format!("token{} steady stream", i % 3),
                seq_no: i as u64,
            });
        }
        let expected = (n - 10) / 5 + 1;
        prop_assert_eq!(det.pattern_hits + det.model_calls, expected as u64);
    }

    /// Formatting normalizes whitespace and preserves content tokens.
    #[test]
    fn format_log_normalizes(tokens in proptest::collection::vec("[a-z]{1,6}", 1..8), pad in 0usize..4) {
        let message = tokens.join(&" ".repeat(pad + 1));
        let raw = RawLog { system: "s".into(), timestamp: 1, message };
        let f = format_log(&raw, 9);
        prop_assert_eq!(f.message.split(' ').count(), tokens.len());
        prop_assert!(!f.message.contains("  "));
    }

    /// Arbitrary interleavings of insert/lookup never exceed the LRU
    /// capacity bound, and a hit always returns the score most recently
    /// inserted for that exact event-id sequence.
    #[test]
    fn score_cache_bounds_capacity_and_serves_freshest(
        capacity in 0usize..9,
        ops in proptest::collection::vec(
            (proptest::collection::vec(0u32..6, 1..4), 0u32..1000, any::<bool>()),
            1..200,
        ),
    ) {
        let mut cache = ScoreCache::new(capacity);
        // Reference model: the last score inserted per exact key.
        let mut freshest: std::collections::HashMap<Vec<u32>, f32> = Default::default();
        for (key, raw_score, is_insert) in ops {
            let score = raw_score as f32 / 1000.0;
            if is_insert {
                cache.insert(&key, score);
                freshest.insert(key.clone(), score);
            } else if let Some(hit) = cache.get(&key) {
                // A hit may legitimately be absent after eviction, but a
                // present entry must carry the freshest score, bitwise.
                let expected = freshest.get(&key).copied();
                prop_assert_eq!(
                    Some(hit.to_bits()),
                    expected.map(f32::to_bits),
                    "hit must return the most recently inserted score"
                );
            }
            prop_assert!(
                cache.len() <= capacity,
                "LRU exceeded its capacity bound: {} > {}",
                cache.len(),
                capacity
            );
        }
    }

    /// The buffer preserves per-system order and loses nothing.
    #[test]
    fn buffer_preserves_per_system_order(
        n in 1usize..60,
        systems in proptest::collection::vec(0u8..3, 1..60),
    ) {
        let buf = LogBuffer::new(3, 128);
        let p = buf.producer();
        let count = n.min(systems.len());
        for (i, &sys) in systems.iter().take(count).enumerate() {
            p.send(RawLog {
                system: format!("sys{sys}"),
                timestamp: i as u64,
                message: String::new(),
            });
        }
        drop(p);
        let mut c = buf.consumer();
        let mut per_system: std::collections::HashMap<String, Vec<u64>> = Default::default();
        let mut total = 0;
        while let Some(l) = c.recv(Duration::from_millis(5)) {
            per_system.entry(l.system).or_default().push(l.timestamp);
            total += 1;
        }
        prop_assert_eq!(total, count);
        for (_, ts) in per_system {
            let mut sorted = ts.clone();
            sorted.sort_unstable();
            prop_assert_eq!(ts, sorted, "per-system order must be preserved");
        }
    }
}
