//! Durable-mode continuity tests (no fault injection): a stream split
//! across two `--wal-dir` runs of the same directory must produce the
//! same windows, accounting, and bitwise-identical verdicts as one
//! uninterrupted run — and records parked in the log with no cursor
//! must be replayed and processed on the next start.

use std::path::{Path, PathBuf};
use std::time::Duration;

use logsynergy::wal::{recover_partition, PartitionWal, WalConfig};
use logsynergy_lei::LeiConfig;
use logsynergy_loggen::SystemId;
use logsynergy_pipeline::{
    run_pipeline_with, EventVectorizer, MemorySink, PipelineConfig, RawLog, Report, SequenceScorer,
    WalOptions,
};

const EMBED_DIM: usize = 8;

/// Eight structurally distinct messages (no shared tokens between
/// same-length pairs) so Drain never merges them: the template space is
/// fixed after warm start and identical in every run.
const VOCAB: [&str; 8] = [
    "session opened for user root",
    "connection from remote peer closed abruptly after handshake timeout",
    "disk write latency elevated beyond configured threshold on volume data1",
    "packet responder terminating early",
    "cache eviction pass completed",
    "replica placement policy satisfied for block",
    "authentication failure reported by gateway node",
    "heartbeat missed twice across consecutive intervals",
];

/// Key-pure scorer: the verdict is a function of the window's *distinct*
/// event set — the same granularity as the pattern library's key. The
/// library is an in-memory tier that starts empty after a process
/// restart (exactly like an LRU eviction), so windows answered by a
/// stored verdict before the restart are model-scored after it; bitwise
/// verdict parity across the restart therefore requires the score to
/// agree with the stored verdict, i.e. to depend only on the pattern
/// key. Real workloads get this from the documented property that
/// same-key windows carry the same content.
#[derive(Clone)]
struct TableScorer;
impl SequenceScorer for TableScorer {
    fn score(&self, events: &[u32], table: &[Vec<f32>]) -> f32 {
        let mut distinct = events.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut acc = 0.0f32;
        for &e in &distinct {
            for v in &table[e as usize] {
                acc += v.abs();
            }
        }
        let frac = acc - acc.floor();
        frac.clamp(0.0, 1.0)
    }
}

fn vectorizer() -> EventVectorizer {
    let mut v = EventVectorizer::new(SystemId::SystemB, EMBED_DIM, LeiConfig::default());
    v.warm_start(VOCAB.iter().copied());
    v
}

fn source(system: &str, n: usize) -> Vec<RawLog> {
    // Aperiodic schedule over the fixed vocabulary: enough distinct
    // window contents that the content-pure scorer crosses the anomaly
    // threshold on some of them (the split test asserts reports > 0).
    (0..n)
        .map(|i| RawLog {
            system: system.to_string(),
            timestamp: i as u64,
            message: VOCAB[(i * 7 + i / 4) % VOCAB.len()].to_string(),
        })
        .collect()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lswal-continuity-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path, partitions: usize) -> PipelineConfig {
    PipelineConfig {
        partitions,
        batch_windows: 8,
        batch_deadline: Duration::from_millis(2),
        wal: Some(WalOptions {
            // Tiny segments so restarts cross roll boundaries too.
            segment_max_bytes: 2048,
            ..WalOptions::at(dir)
        }),
        ..PipelineConfig::default()
    }
}

fn assert_reports_bitwise_equal(a: &[Report], b: &[Report], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: report count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x, y, "{label}: full report");
        assert_eq!(
            x.probability.to_bits(),
            y.probability.to_bits(),
            "{label}: probability must be bitwise identical"
        );
    }
}

#[test]
fn split_stream_resumes_to_the_single_run_verdicts() {
    let n = 240;
    // 103 is deliberately neither a window (10) nor a step (5) multiple:
    // the restart lands mid-window, so the cursor's assembler context
    // must be re-primed for the first post-restart window to be right.
    let split = 103;
    let stream = source("b", n);

    // One uninterrupted in-memory run is the reference.
    let baseline_sink = MemorySink::new();
    let baseline = run_pipeline_with(
        stream.clone(),
        vectorizer(),
        TableScorer,
        baseline_sink.clone(),
        PipelineConfig {
            partitions: 1,
            batch_windows: 8,
            batch_deadline: Duration::from_millis(2),
            ..PipelineConfig::default()
        },
    );
    assert!(baseline.reports > 0, "workload must report: {baseline:?}");

    let dir = scratch("split");
    let cfg = config(&dir, 1);

    let sink1 = MemorySink::new();
    let first = run_pipeline_with(
        stream[..split].to_vec(),
        vectorizer(),
        TableScorer,
        sink1.clone(),
        cfg.clone(),
    );
    assert_eq!(first.logs, split as u64);
    assert_eq!(first.crashed_workers, 0);
    // The drain committed everything: the cursor on disk covers the
    // whole prefix, and nothing is waiting for replay.
    let r = recover_partition(&dir.join("p0")).unwrap();
    assert_eq!(r.cursor.next_seq, split as u64);
    assert!(r.replay.is_empty(), "a clean drain leaves nothing unacked");
    assert_eq!(
        r.context.len(),
        r.cursor.window_fill as usize,
        "context is exactly the assembler fill"
    );

    // Second process: same directory, the rest of the stream.
    let sink2 = MemorySink::new();
    let second = run_pipeline_with(
        stream[split..].to_vec(),
        vectorizer(),
        TableScorer,
        sink2.clone(),
        cfg,
    );

    // The second summary is cumulative — it resumes the first run's
    // cursor — and must account for every window of the full stream
    // exactly once.
    assert_eq!(second.logs, n as u64, "cumulative log count");
    assert_eq!(
        second.windows, baseline.windows,
        "no window lost or doubled"
    );
    assert_eq!(
        second.pattern_hits + second.cache_hits + second.model_calls,
        baseline.pattern_hits + baseline.cache_hits + baseline.model_calls,
        "every window verdicts through some tier: {second:?}"
    );
    assert_eq!(second.degraded, 0);
    assert_eq!(second.shed, 0);
    assert_eq!(second.quarantined, 0);
    assert_eq!(second.reports, baseline.reports, "cumulative report count");

    // Verdicts across the restart boundary are the single run's,
    // bitwise: run 1's reports followed by run 2's.
    let mut stitched = sink1.reports();
    stitched.extend(sink2.reports());
    assert_reports_bitwise_equal(&stitched, &baseline_sink.reports(), "split vs single");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parked_records_with_no_cursor_are_replayed_on_start() {
    // A producer that appended records but whose workers never ran (a
    // crash before any commit): everything in the log is unacked and
    // must be replayed — processing them exactly as if they arrived live.
    let n = 60;
    let stream = source("b", n);
    let dir = scratch("parked");
    std::fs::create_dir_all(dir.join("p0")).unwrap();
    {
        let (mut wal, _) = PartitionWal::open(&dir.join("p0"), WalConfig::default()).unwrap();
        for log in &stream {
            wal.append(&log.system, log.timestamp, &log.message)
                .unwrap();
        }
    }

    // Start durable with an *empty* live source: only the replay flows.
    let sink = MemorySink::new();
    let summary = run_pipeline_with(
        Vec::new(),
        vectorizer(),
        TableScorer,
        sink.clone(),
        config(&dir, 1),
    );

    let reference_sink = MemorySink::new();
    let reference = run_pipeline_with(
        stream,
        vectorizer(),
        TableScorer,
        reference_sink.clone(),
        PipelineConfig {
            partitions: 1,
            batch_windows: 8,
            batch_deadline: Duration::from_millis(2),
            ..PipelineConfig::default()
        },
    );

    assert_eq!(summary.logs, n as u64, "every parked record is replayed");
    assert_eq!(summary.windows, reference.windows);
    assert_eq!(summary.reports, reference.reports);
    assert_reports_bitwise_equal(
        &sink.reports(),
        &reference_sink.reports(),
        "replayed vs live",
    );

    // And the replay was itself accounted durably: a third start finds
    // a caught-up cursor and replays nothing.
    let r = recover_partition(&dir.join("p0")).unwrap();
    assert_eq!(r.cursor.next_seq, n as u64);
    assert!(r.replay.is_empty());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn multi_partition_split_keeps_per_partition_order_and_accounting() {
    // Four systems, one per partition (FNV % 4), interleaved; restart
    // mid-stream and compare against the uninterrupted run.
    let systems = ["web-0", "web-3", "web-2", "web-1"];
    let per_system = 80usize;
    let mut stream = Vec::new();
    for i in 0..per_system {
        for s in &systems {
            stream.push(RawLog {
                system: s.to_string(),
                timestamp: i as u64,
                message: VOCAB[(i + s.len()) % VOCAB.len()].to_string(),
            });
        }
    }
    let n = stream.len();
    let split = n / 2 + 3;

    let baseline_sink = MemorySink::new();
    let baseline = run_pipeline_with(
        stream.clone(),
        vectorizer(),
        TableScorer,
        baseline_sink.clone(),
        PipelineConfig {
            partitions: 4,
            batch_windows: 8,
            batch_deadline: Duration::from_millis(2),
            ..PipelineConfig::default()
        },
    );

    let dir = scratch("multi");
    let cfg = config(&dir, 4);
    let sink1 = MemorySink::new();
    run_pipeline_with(
        stream[..split].to_vec(),
        vectorizer(),
        TableScorer,
        sink1.clone(),
        cfg.clone(),
    );
    let sink2 = MemorySink::new();
    let second = run_pipeline_with(
        stream[split..].to_vec(),
        vectorizer(),
        TableScorer,
        sink2.clone(),
        cfg,
    );

    assert_eq!(second.logs, n as u64);
    assert_eq!(second.windows, baseline.windows);
    assert_eq!(second.reports, baseline.reports);

    // Per-system verdict streams must stitch bitwise (global report
    // interleaving across partitions is scheduling-dependent in both
    // modes, per-system order is the contract).
    let mut stitched = sink1.reports();
    stitched.extend(sink2.reports());
    for system in systems {
        let got: Vec<Report> = stitched
            .iter()
            .filter(|r| r.system == system)
            .cloned()
            .collect();
        let want: Vec<Report> = baseline_sink
            .reports()
            .into_iter()
            .filter(|r| r.system == system)
            .collect();
        assert_reports_bitwise_equal(&got, &want, system);
    }

    let _ = std::fs::remove_dir_all(&dir);
}
