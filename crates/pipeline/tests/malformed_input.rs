//! End-to-end regression tests for malformed ingest input.
//!
//! The collection path must treat hostile records as data, not as
//! panics: empty and whitespace-only messages, control characters,
//! pathologically long lines, and empty system names all flow through
//! format → window → tier resolution, and every failure the path can
//! hit surfaces as a typed [`PipelineError`] instead of an unwind.

use std::sync::Arc;
use std::time::Duration;

use logsynergy::model::LogSynergyModel;
use logsynergy::ModelConfig;
use logsynergy_lei::LeiConfig;
use logsynergy_loggen::SystemId;
use logsynergy_pipeline::{
    run_pipeline_with, EventVectorizer, LogBuffer, MemorySink, ModelScorer, PipelineConfig,
    PipelineError, RawLog,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EMBED_DIM: usize = 8;

fn tiny_model(seed: u64) -> Arc<LogSynergyModel> {
    let config = ModelConfig {
        embed_dim: EMBED_DIM,
        d_model: 8,
        heads: 2,
        ff: 16,
        layers: 1,
        max_len: 10,
        dropout: 0.0,
        head_hidden: 8,
        num_systems: 2,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(LogSynergyModel::new(config, &mut rng))
}

fn vectorizer() -> EventVectorizer {
    EventVectorizer::new(SystemId::SystemB, EMBED_DIM, LeiConfig::default())
}

/// A stream mixing healthy records with every malformed shape the
/// collectors have been seen to emit in the field.
fn hostile_stream() -> Vec<RawLog> {
    let mut logs = Vec::new();
    let mut raw = |system: &str, message: String| {
        let timestamp = logs.len() as u64;
        logs.push(RawLog {
            system: system.into(),
            timestamp,
            message,
        });
    };
    for i in 0..120u64 {
        match i % 8 {
            // Empty and whitespace-only bodies.
            1 => raw("b", String::new()),
            2 => raw("b", " \t \r\n  ".to_string()),
            // Control characters and embedded NULs.
            3 => raw("b", "conn\x00reset \x07by\x1b[31m peer\u{7f}".to_string()),
            // A pathologically long single token and a long line.
            4 => raw("b", "x".repeat(64 * 1024)),
            5 => raw("b", "flood ".repeat(16 * 1024)),
            // Empty / whitespace system names.
            6 => raw("", format!("orphan record {i}")),
            7 => raw("  ", format!("blank-system record {i}")),
            // Healthy traffic between the hostile records.
            _ => raw("b", format!("session open remote peer lan {}", i % 3)),
        }
    }
    logs
}

#[test]
fn hostile_records_flow_end_to_end_without_panic_or_loss() {
    let model = tiny_model(42);
    let source = hostile_stream();
    let expected_logs = source.len() as u64;
    let sink = MemorySink::new();
    let summary = run_pipeline_with(
        source,
        vectorizer(),
        ModelScorer::shared(model),
        sink.clone(),
        PipelineConfig {
            partitions: 2,
            batch_windows: 4,
            ..PipelineConfig::default()
        },
    );
    assert_eq!(summary.logs, expected_logs, "no record may be dropped");
    assert_eq!(
        summary.pattern_hits
            + summary.cache_hits
            + summary.model_calls
            + summary.degraded
            + summary.shed
            + summary.quarantined,
        summary.windows,
        "hostile input must not break tier conservation: {summary:?}"
    );
    assert_eq!(
        summary.quarantined, 0,
        "malformed input is data, not a fault"
    );
    assert_eq!(
        summary.worker_restarts, 0,
        "no worker may panic: {summary:?}"
    );
    for report in sink.reports() {
        assert!(report.probability.is_finite());
    }
}

#[test]
fn send_after_shutdown_returns_typed_error_with_the_record() {
    let buf = LogBuffer::new(2, 8);
    let producer = buf.producer();
    // Drain and drop every consumer: the channel closes underneath the
    // producer, which must hand the record back with a typed error
    // instead of panicking.
    drop(buf);
    let log = RawLog {
        system: "b".into(),
        timestamp: 7,
        message: "late arrival".into(),
    };
    let (returned, err) = producer
        .try_send(log)
        .expect_err("send into a closed buffer must fail");
    let expected = producer.partition_for("b");
    assert_eq!(
        err,
        PipelineError::BufferClosed {
            partition: expected
        }
    );
    assert!(!err.is_transient(), "closed is terminal, not retryable");
    assert_eq!(returned.timestamp, 7, "the record comes back intact");
    assert_eq!(returned.message, "late arrival");
    assert!(!err.to_string().is_empty());
}

#[test]
fn empty_source_completes_with_empty_summary() {
    let model = tiny_model(42);
    let sink = MemorySink::new();
    let summary = run_pipeline_with(
        Vec::new(),
        vectorizer(),
        ModelScorer::shared(model),
        sink.clone(),
        PipelineConfig::default(),
    );
    assert_eq!(summary.logs, 0);
    assert_eq!(summary.windows, 0);
    assert_eq!(summary.reports, 0);
    assert!(summary.dead_letters.is_empty());
    assert!(sink.reports().is_empty());
    assert!(summary.elapsed < Duration::from_secs(10));
}
