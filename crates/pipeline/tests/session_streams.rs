//! Pattern-library effectiveness on realistic (session-structured) log
//! streams: production logs repeat in procedure-shaped runs, so the
//! fast path absorbs most windows — the §VI-A claim the i.i.d. synthetic
//! streams understate.

use logsynergy_lei::LeiConfig;
use logsynergy_loggen::{datasets, LogDataset, SystemId};
use logsynergy_pipeline::{EventVectorizer, OnlineDetector, SequenceScorer, StructuredLog};

struct NeverScorer;
impl SequenceScorer for NeverScorer {
    fn score(&self, _events: &[u32], _table: &[Vec<f32>]) -> f32 {
        0.0
    }
}

fn fast_hit_rate(ds: &LogDataset) -> f64 {
    let v = EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());
    let mut det = OnlineDetector::new(v, NeverScorer);
    for (i, r) in ds.records.iter().enumerate() {
        det.ingest(StructuredLog {
            system: "b".into(),
            timestamp: r.timestamp,
            message: r.message.clone(),
            seq_no: i as u64,
        });
    }
    let windows = det.pattern_hits + det.model_calls;
    det.pattern_hits as f64 / windows.max(1) as f64
}

#[test]
fn session_streams_hit_the_fast_path() {
    let spec = datasets::system_b();
    let iid = fast_hit_rate(&spec.generate_with(0.008, 3.0));
    let sess = fast_hit_rate(&spec.generate_sessions(0.008, 3.0, 6.0));
    assert!(
        sess > iid + 0.2,
        "session structure must raise the fast-path hit rate: iid {iid:.2} -> sessions {sess:.2}"
    );
    assert!(
        sess > 0.4,
        "sessions should serve a large share from the library: {sess:.2}"
    );
}
