//! Multi-tenant batching/caching invariance.
//!
//! Windows are assembled per *worker* stream, so changing the partition
//! count changes which logs share a window — cross-partition-count runs
//! are NOT comparable on a multi-tenant source (that was the bug in the
//! scratch test this file replaces). What the determinism contract does
//! guarantee: at a fixed partitioning, micro-batching and the score cache
//! change cost only — every tenant's reports must be byte-identical to
//! the one-window-at-a-time, cache-less run.

use logsynergy_lei::LeiConfig;
use logsynergy_loggen::SystemId;
use logsynergy_pipeline::{
    run_pipeline_with, EventVectorizer, MemorySink, PipelineConfig, RawLog, SequenceScorer,
};

#[derive(Clone)]
struct EvenScorer;
impl SequenceScorer for EvenScorer {
    fn score(&self, events: &[u32], _t: &[Vec<f32>]) -> f32 {
        if events.iter().any(|e| e % 2 == 1) {
            0.9
        } else {
            0.1
        }
    }
}

fn tenant_source() -> Vec<RawLog> {
    let tenants = ["tenant-a", "tenant-b", "tenant-c"];
    (0..240u64)
        .map(|i| {
            let msg = if (90..102).contains(&i) {
                "drive volume dead offline spindle".to_string()
            } else {
                "session open remote peer lan".to_string()
            };
            RawLog {
                system: tenants[(i % 3) as usize].into(),
                timestamp: i,
                message: msg,
            }
        })
        .collect()
}

#[test]
fn multi_tenant_batching_is_invisible_at_fixed_partitioning() {
    let source = tenant_source();
    let make_v = || EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());

    // One window at a time, no cache — the semantic reference — at the
    // same partition count as every candidate below.
    let reference = PipelineConfig {
        partitions: 4,
        batch_windows: 1,
        score_cache: 0,
        ..PipelineConfig::default()
    };
    let base_sink = MemorySink::new();
    let base = run_pipeline_with(
        source.clone(),
        make_v(),
        EvenScorer,
        base_sink.clone(),
        reference,
    );
    assert!(base.reports > 0, "burst must be reported");

    for (label, config) in [
        ("batched+cached", PipelineConfig::default()),
        (
            "small batches",
            PipelineConfig {
                batch_windows: 4,
                ..PipelineConfig::default()
            },
        ),
        (
            "cache off",
            PipelineConfig {
                score_cache: 0,
                ..PipelineConfig::default()
            },
        ),
    ] {
        let sink = MemorySink::new();
        let s = run_pipeline_with(source.clone(), make_v(), EvenScorer, sink.clone(), config);
        assert_eq!(s.logs, base.logs, "{label}");
        assert_eq!(s.windows, base.windows, "{label}");
        assert_eq!(s.reports, base.reports, "{label}");
        // Caching moves verdicts between tiers but never changes them.
        assert_eq!(
            s.pattern_hits, base.pattern_hits,
            "{label}: pattern tier must be identical"
        );
        assert_eq!(
            s.cache_hits + s.model_calls,
            base.model_calls,
            "{label}: cache hits must be repeat model verdicts"
        );
        for t in ["tenant-a", "tenant-b", "tenant-c"] {
            let ra: Vec<_> = base_sink
                .reports()
                .into_iter()
                .filter(|r| r.system == t)
                .collect();
            let rb: Vec<_> = sink
                .reports()
                .into_iter()
                .filter(|r| r.system == t)
                .collect();
            assert_eq!(
                format!("{ra:?}"),
                format!("{rb:?}"),
                "{label}: tenant {t} reports differ"
            );
        }
    }
}
