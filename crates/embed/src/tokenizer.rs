//! Lightweight text tokenization for embedding.

/// Splits text into lowercase alphanumeric tokens; punctuation separates
/// tokens and pure-digit tokens are dropped (they are parameters, not
/// semantics).
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric() && c != '_')
        .filter(|t| !t.is_empty())
        .filter(|t| !t.chars().all(|c| c.is_ascii_digit()))
        .map(|t| t.to_ascii_lowercase())
        .collect()
}

/// A growable token → id vocabulary (used by event-index models such as
/// DeepLog).
#[derive(Default, Clone, Debug)]
pub struct Vocab {
    map: std::collections::HashMap<String, usize>,
    tokens: Vec<String>,
}

impl Vocab {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Id of `token`, inserting it if new.
    pub fn get_or_insert(&mut self, token: &str) -> usize {
        if let Some(&id) = self.map.get(token) {
            return id;
        }
        let id = self.tokens.len();
        self.map.insert(token.to_string(), id);
        self.tokens.push(token.to_string());
        id
    }

    /// Id of `token` if known.
    pub fn get(&self, token: &str) -> Option<usize> {
        self.map.get(token).copied()
    }

    /// Token for an id.
    pub fn token(&self, id: usize) -> &str {
        &self.tokens[id]
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when no tokens are registered.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowers_and_splits() {
        assert_eq!(
            tokenize("Network Interface DOWN, due-to Los!"),
            vec!["network", "interface", "down", "due", "to", "los"]
        );
    }

    #[test]
    fn tokenize_drops_pure_numbers_keeps_mixed() {
        assert_eq!(tokenize("error 404 at 0x1f"), vec!["error", "at", "0x1f"]);
    }

    #[test]
    fn vocab_assigns_stable_ids() {
        let mut v = Vocab::new();
        let a = v.get_or_insert("alpha");
        let b = v.get_or_insert("beta");
        assert_ne!(a, b);
        assert_eq!(v.get_or_insert("alpha"), a);
        assert_eq!(v.get("beta"), Some(b));
        assert_eq!(v.token(a), "alpha");
        assert_eq!(v.len(), 2);
    }
}
