//! Deterministic hashed-gaussian sentence embeddings — the stand-in for
//! the paper's pre-trained encoder (DistilBERT; §III-C "Event Embedding").
//!
//! The paper explicitly treats the pre-trained embedding model as an
//! interchangeable component. What LogSynergy needs from it is a fixed
//! function `text -> R^d` where token overlap ⇒ vector proximity. Hashed
//! embeddings provide exactly that: each vocabulary token gets a frozen
//! Gaussian vector derived from its hash, and a sentence embeds as the
//! L2-normalized mean of its token vectors.

use std::cell::RefCell;
use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::tokenizer::tokenize;

/// A frozen "pre-trained" sentence embedder.
#[derive(Clone)]
pub struct HashedEmbedder {
    dim: usize,
    seed: u64,
    cache: RefCell<HashMap<String, Vec<f32>>>,
}

fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl HashedEmbedder {
    /// Creates an embedder of dimension `dim` with a fixed seed (the
    /// "pre-training"): the same (seed, dim) always yields the same
    /// embedding function.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0);
        HashedEmbedder {
            dim,
            seed,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn token_vector(&self, token: &str) -> Vec<f32> {
        if let Some(v) = self.cache.borrow().get(token) {
            return v.clone();
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ fnv64(token));
        let t = logsynergy_nn::Tensor::randn(&mut rng, &[self.dim], 1.0);
        let v = t.into_data();
        self.cache.borrow_mut().insert(token.to_string(), v.clone());
        v
    }

    /// Embeds a sentence: mean of token vectors, L2-normalized.
    /// Empty/unknown text embeds to the zero vector.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let tokens = tokenize(text);
        let mut acc = vec![0.0f32; self.dim];
        if tokens.is_empty() {
            return acc;
        }
        for t in &tokens {
            let v = self.token_vector(t);
            for (a, x) in acc.iter_mut().zip(&v) {
                *a += x;
            }
        }
        let n = tokens.len() as f32;
        acc.iter_mut().for_each(|a| *a /= n);
        let norm = acc.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 1e-12 {
            acc.iter_mut().for_each(|a| *a /= norm);
        }
        acc
    }

    /// Embeds many sentences into a row-major `[n, dim]` buffer.
    pub fn embed_batch<'a>(&self, texts: impl IntoIterator<Item = &'a str>) -> Vec<Vec<f32>> {
        texts.into_iter().map(|t| self.embed(t)).collect()
    }
}

/// Cosine similarity between two equal-length vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na < 1e-12 || nb < 1e-12 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = HashedEmbedder::new(32, 1).embed("network connection interrupted");
        let b = HashedEmbedder::new(32, 1).embed("network connection interrupted");
        assert_eq!(a, b);
    }

    #[test]
    fn output_is_unit_norm() {
        let e = HashedEmbedder::new(64, 2);
        let v = e.embed("disk device failed");
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-5);
    }

    #[test]
    fn shared_tokens_increase_similarity() {
        let e = HashedEmbedder::new(64, 3);
        let base = e.embed("network connection interrupted due to loss of signal");
        let close = e.embed("network connection interrupted");
        let far = e.embed("garbage collection cycle completed");
        assert!(cosine(&base, &close) > cosine(&base, &far) + 0.2);
    }

    #[test]
    fn disjoint_vocabulary_is_near_orthogonal() {
        let e = HashedEmbedder::new(128, 4);
        let a = e.embed("alpha beta gamma delta");
        let b = e.embed("epsilon zeta eta theta");
        assert!(cosine(&a, &b).abs() < 0.3);
    }

    #[test]
    fn identical_meaning_identical_vector() {
        // LEI's payoff: same interpretation text = same embedding exactly.
        let e = HashedEmbedder::new(64, 5);
        let a = e.embed("network connection interrupted due to loss of signal");
        let b = e.embed("network connection interrupted due to loss of signal");
        assert_eq!(a, b);
    }

    #[test]
    fn empty_text_is_zero() {
        let e = HashedEmbedder::new(16, 6);
        assert_eq!(e.embed("1234 5678"), vec![0.0; 16]);
    }
}
