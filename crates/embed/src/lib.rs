//! # logsynergy-embed
//!
//! Event-embedding substrate (paper §III-C "Event Embedding"): a frozen,
//! deterministic sentence embedder standing in for the paper's pre-trained
//! DistilBERT, plus the tokenizer and vocabulary utilities the baselines
//! share. The paper treats the embedding model as interchangeable; what
//! matters is that token overlap maps to vector proximity, which the
//! hashed-gaussian construction guarantees.
//!
//! ```
//! use logsynergy_embed::{cosine, HashedEmbedder};
//!
//! let embedder = HashedEmbedder::new(64, 42);
//! let a = embedder.embed("network connection interrupted");
//! let b = embedder.embed("network connection dropped");
//! let c = embedder.embed("garbage collection cycle completed");
//! assert!(cosine(&a, &b) > cosine(&a, &c), "token overlap => proximity");
//! assert_eq!(a, embedder.embed("network connection interrupted"), "frozen");
//! ```

#![warn(missing_docs)]

pub mod hashed;
pub mod tokenizer;

pub use hashed::{cosine, HashedEmbedder};
pub use tokenizer::{tokenize, Vocab};
