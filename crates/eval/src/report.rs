//! Text rendering of experiment results in the paper's table layouts,
//! plus JSON persistence.

use std::fmt::Write as _;

use crate::experiments::{
    AblationResult, CaseStudy, SweepPoint, Table3Row, TargetResults, TransferResult,
};

/// Renders Table III.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:>12} {:>14} {:>12} | {:>9} {:>10} {:>10}",
        "Dataset", "paper logs", "paper seqs", "paper anom", "gen logs", "gen seqs", "gen anom"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<12} {:>12} {:>14} {:>12} | {:>9} {:>10} {:>10}",
            r.dataset,
            r.paper_logs,
            r.paper_sequences,
            r.paper_anomalies,
            r.gen_logs,
            r.gen_sequences,
            r.gen_anomalies
        );
    }
    s
}

/// Renders a Table IV/V block (all methods × one group's targets).
pub fn render_group_table(title: &str, results: &[TargetResults]) -> String {
    let mut s = format!("== {title} ==\n");
    let _ = write!(s, "{:<22} {:<26}", "Method", "Type");
    for t in results {
        let _ = write!(s, " | {:^23}", t.target);
    }
    s.push('\n');
    let _ = write!(s, "{:<22} {:<26}", "", "");
    for _ in results {
        let _ = write!(s, " | {:>7} {:>7} {:>7}", "P(%)", "R(%)", "F1(%)");
    }
    s.push('\n');
    let n_methods = results.first().map(|t| t.rows.len()).unwrap_or(0);
    for m in 0..n_methods {
        let first = &results[0].rows[m];
        let _ = write!(s, "{:<22} {:<26}", first.method, first.category);
        for t in results {
            let p = &t.rows[m].prf;
            let _ = write!(s, " | {:>7.2} {:>7.2} {:>7.2}", p.precision, p.recall, p.f1);
        }
        s.push('\n');
    }
    s
}

/// Renders a Fig. 4 sweep as a value × target F1 matrix.
pub fn render_sweep(title: &str, points: &[SweepPoint]) -> String {
    let mut s = format!("== {title} ==\n");
    if points.is_empty() {
        return s;
    }
    let _ = write!(s, "{:>10}", "value");
    for (name, _) in &points[0].f1_by_target {
        let _ = write!(s, " {:>12}", name);
    }
    s.push('\n');
    for p in points {
        let _ = write!(s, "{:>10}", format_value(p.value));
        for (_, f1) in &p.f1_by_target {
            let _ = write!(s, " {:>12.2}", f1);
        }
        s.push('\n');
    }
    s
}

fn format_value(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// Renders the Fig. 5 ablation block.
pub fn render_ablation(results: &[AblationResult]) -> String {
    let mut s = String::from("== Fig. 5: Ablation (F1 %) ==\n");
    let _ = writeln!(
        s,
        "{:<12} {:>12} {:>12} {:>12} {:>18}",
        "Target", "LogSynergy", "w/o LEI", "w/o SUFE", "NeuralLog direct"
    );
    for r in results {
        let _ = writeln!(
            s,
            "{:<12} {:>12.2} {:>12.2} {:>12.2} {:>18.2}",
            r.target, r.full.prf.f1, r.no_lei.prf.f1, r.no_sufe.prf.f1, r.neurallog_direct.prf.f1
        );
    }
    s
}

/// Renders the Fig. 6 transfer block.
pub fn render_transfers(results: &[TransferResult]) -> String {
    let mut s = String::from("== Fig. 6: cross-group transfer ==\n");
    let _ = writeln!(
        s,
        "{:<12} -> {:<12} {:>8} {:>8} {:>8}",
        "Source", "Target", "P(%)", "R(%)", "F1(%)"
    );
    for r in results {
        let _ = writeln!(
            s,
            "{:<12} -> {:<12} {:>8.2} {:>8.2} {:>8.2}",
            r.source, r.target, r.result.prf.precision, r.result.prf.recall, r.result.prf.f1
        );
    }
    s
}

/// Renders the Fig. 8 case study.
pub fn render_case_study(cs: &CaseStudy) -> String {
    let mut s = String::from("== Fig. 8: case study ==\n");
    let _ = writeln!(
        s,
        "raw-representation similarity: {:.3} (margin over nearest normal: {:+.3})",
        cs.raw_similarity, cs.raw_margin
    );
    let _ = writeln!(
        s,
        "LEI-interpretation similarity: {:.3} (margin over nearest normal: {:+.3})",
        cs.lei_similarity, cs.lei_margin
    );
    let _ = writeln!(s, "\n-- normal System A event (raw) --");
    for t in cs.target_templates.iter().take(5) {
        let _ = writeln!(s, "  {t}");
    }
    let _ = writeln!(s, "-- anomalous System C event (raw) --");
    for t in cs.source_templates.iter().take(5) {
        let _ = writeln!(s, "  {t}");
    }
    let _ = writeln!(s, "-- System A interpretations --");
    for t in cs.target_interpretations.iter().take(5) {
        let _ = writeln!(s, "  {t}");
    }
    let _ = writeln!(s, "-- System C interpretations --");
    for t in cs.source_interpretations.iter().take(5) {
        let _ = writeln!(s, "  {t}");
    }
    s
}

/// Serializes any result to pretty JSON.
pub fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("result serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MethodResult;
    use crate::metrics::Prf;

    fn mr(name: &str, f1: f64) -> MethodResult {
        MethodResult {
            method: name.into(),
            category: "Supervised".into(),
            prf: Prf {
                precision: f1,
                recall: f1,
                f1,
            },
            train_secs: 1.0,
            n_test: 10,
            n_test_anomalies: 2,
        }
    }

    #[test]
    fn group_table_renders_all_methods_and_targets() {
        let results = vec![
            TargetResults {
                target: "BGL".into(),
                rows: vec![mr("DeepLog", 19.4), mr("LogSynergy", 83.4)],
            },
            TargetResults {
                target: "Spirit".into(),
                rows: vec![mr("DeepLog", 2.0), mr("LogSynergy", 90.6)],
            },
        ];
        let out = render_group_table("Table IV", &results);
        assert!(out.contains("BGL"));
        assert!(out.contains("Spirit"));
        assert!(out.contains("LogSynergy"));
        assert!(out.contains("83.40"));
    }

    #[test]
    fn sweep_renders_matrix() {
        let points = vec![SweepPoint {
            value: 0.01,
            f1_by_target: vec![("BGL".into(), 83.0), ("Spirit".into(), 90.0)],
        }];
        let out = render_sweep("Fig 4a", &points);
        assert!(out.contains("0.01"));
        assert!(out.contains("90.00"));
    }

    #[test]
    fn json_roundtrip() {
        let r = mr("X", 50.0);
        let j = to_json(&r);
        let back: MethodResult = serde_json::from_str(&j).unwrap();
        assert_eq!(back.method, "X");
    }
}
