//! Uniform runner for every method in the paper's tables, including
//! LogSynergy and its ablation variants.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use logsynergy::detector::Detector;
use logsynergy::model::LogSynergyModel;
use logsynergy::trainer::{build_training_set, train, TrainOptions};
use logsynergy::PreparedSystem;
use logsynergy_baselines as bl;
use logsynergy_baselines::{FitContext, Method};
use rand::SeedableRng;

use crate::metrics::Prf;
use crate::setup::{ExperimentConfig, SystemData};

/// Every method the evaluation can run.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MethodKind {
    /// DeepLog (unsupervised).
    DeepLog,
    /// LogAnomaly (unsupervised).
    LogAnomaly,
    /// PLELog (semi-supervised).
    PLELog,
    /// SpikeLog (weakly-supervised).
    SpikeLog,
    /// NeuralLog (supervised).
    NeuralLog,
    /// LogRobust (supervised).
    LogRobust,
    /// PreLog (pre-trained).
    PreLog,
    /// LogTAD (unsupervised cross-system).
    LogTAD,
    /// LogTransfer (supervised cross-system).
    LogTransfer,
    /// MetaLog (supervised cross-system).
    MetaLog,
    /// LogSynergy (this paper).
    LogSynergy,
    /// Ablation: LogSynergy without LEI (raw templates).
    LogSynergyNoLei,
    /// Ablation: LogSynergy without SUFE (domain adaptation only).
    LogSynergyNoSufe,
    /// Ablation: NeuralLog trained on sources only, applied directly.
    NeuralLogDirect,
}

impl MethodKind {
    /// The eleven methods of Tables IV/V, in the paper's row order.
    pub const TABLE_METHODS: [MethodKind; 11] = [
        MethodKind::DeepLog,
        MethodKind::LogAnomaly,
        MethodKind::PLELog,
        MethodKind::SpikeLog,
        MethodKind::NeuralLog,
        MethodKind::LogRobust,
        MethodKind::PreLog,
        MethodKind::LogTAD,
        MethodKind::LogTransfer,
        MethodKind::MetaLog,
        MethodKind::LogSynergy,
    ];

    /// Display name (paper row label).
    pub fn name(self) -> &'static str {
        match self {
            MethodKind::DeepLog => "DeepLog",
            MethodKind::LogAnomaly => "LogAnomaly",
            MethodKind::PLELog => "PLELog",
            MethodKind::SpikeLog => "SpikeLog",
            MethodKind::NeuralLog => "NeuralLog",
            MethodKind::LogRobust => "LogRobust",
            MethodKind::PreLog => "PreLog",
            MethodKind::LogTAD => "LogTAD",
            MethodKind::LogTransfer => "LogTransfer",
            MethodKind::MetaLog => "MetaLog",
            MethodKind::LogSynergy => "LogSynergy",
            MethodKind::LogSynergyNoLei => "LogSynergy w/o LEI",
            MethodKind::LogSynergyNoSufe => "LogSynergy w/o SUFE",
            MethodKind::NeuralLogDirect => "NeuralLog (direct)",
        }
    }

    /// The paper's "Type" column.
    pub fn category(self) -> &'static str {
        match self {
            MethodKind::DeepLog | MethodKind::LogAnomaly => "Unsupervised",
            MethodKind::PLELog => "Semi-supervised",
            MethodKind::SpikeLog => "Weakly-supervised",
            MethodKind::NeuralLog | MethodKind::LogRobust | MethodKind::NeuralLogDirect => {
                "Supervised"
            }
            MethodKind::PreLog => "Pre-trained",
            MethodKind::LogTAD => "Unsupervised Cross-System",
            MethodKind::LogTransfer
            | MethodKind::MetaLog
            | MethodKind::LogSynergy
            | MethodKind::LogSynergyNoLei
            | MethodKind::LogSynergyNoSufe => "Supervised Cross-System",
        }
    }
}

/// One method's result on one target.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MethodResult {
    /// Method name.
    pub method: String,
    /// Type column.
    pub category: String,
    /// Metrics (percent).
    pub prf: Prf,
    /// Wall-clock training time in seconds.
    pub train_secs: f64,
    /// Test-set size.
    pub n_test: usize,
    /// Anomalies in the test set.
    pub n_test_anomalies: usize,
}

fn test_split(
    p: &PreparedSystem,
    cfg: &ExperimentConfig,
) -> (Vec<logsynergy::SeqSample>, Vec<bool>) {
    let (_, test) = p.split(cfg.test_start(), cfg.max_test);
    let truth = test.iter().map(|s| s.label).collect();
    (test, truth)
}

/// Trains and evaluates a LogSynergy variant.
fn run_logsynergy(
    sources: &[&PreparedSystem],
    target: &PreparedSystem,
    cfg: &ExperimentConfig,
    options: TrainOptions,
) -> (Vec<bool>, f64, usize, usize) {
    let mcfg = cfg.model_config(sources.len() + 1);
    let tcfg = cfg.train_config();
    let mut rng = rand::rngs::StdRng::seed_from_u64(tcfg.seed);
    let mut model = LogSynergyModel::new(mcfg.clone(), &mut rng);
    let set = build_training_set(
        sources,
        target,
        tcfg.n_source,
        tcfg.n_target,
        mcfg.max_len,
        mcfg.embed_dim,
    );
    let t0 = Instant::now();
    train(&mut model, &set, &tcfg, options);
    let secs = t0.elapsed().as_secs_f64();
    let (test, truth) = test_split(target, cfg);
    let pred = Detector::new(&model).detect(&test, &target.event_embeddings);
    let n_anom = truth.iter().filter(|&&t| t).count();
    (pred, secs, test.len(), n_anom)
}

/// Runs a LogSynergy variant with explicit [`TrainOptions`] (used by the
/// design-ablation benches, e.g. DAAN vs MMD vs no adaptation).
pub fn run_logsynergy_custom(
    sources: &[&SystemData],
    target: &SystemData,
    cfg: &ExperimentConfig,
    options: TrainOptions,
    use_lei: bool,
) -> MethodResult {
    let src_views: Vec<&PreparedSystem> = sources
        .iter()
        .map(|d| if use_lei { &d.lei } else { &d.raw })
        .collect();
    let tgt_view: &PreparedSystem = if use_lei { &target.lei } else { &target.raw };
    let (pred, secs, n_test, n_anom) = run_logsynergy(&src_views, tgt_view, cfg, options);
    let (_, truth) = test_split(tgt_view, cfg);
    MethodResult {
        method: format!("LogSynergy ({options:?})"),
        category: "Supervised Cross-System".to_string(),
        prf: Prf::evaluate(&pred, &truth),
        train_secs: secs,
        n_test,
        n_test_anomalies: n_anom,
    }
}

/// Runs one method end-to-end on one target.
pub fn run_method(
    kind: MethodKind,
    sources: &[&SystemData],
    target: &SystemData,
    cfg: &ExperimentConfig,
) -> MethodResult {
    let (pred, secs, n_test, n_anom, truth): (Vec<bool>, f64, usize, usize, Vec<bool>) = match kind
    {
        MethodKind::LogSynergy | MethodKind::LogSynergyNoSufe | MethodKind::LogSynergyNoLei => {
            let use_lei = kind != MethodKind::LogSynergyNoLei;
            let src_views: Vec<&PreparedSystem> = sources
                .iter()
                .map(|d| if use_lei { &d.lei } else { &d.raw })
                .collect();
            let tgt_view: &PreparedSystem = if use_lei { &target.lei } else { &target.raw };
            let options = TrainOptions {
                use_sufe: kind != MethodKind::LogSynergyNoSufe,
                da: logsynergy::trainer::DaMode::Daan,
            };
            let (pred, secs, n_test, n_anom) = run_logsynergy(&src_views, tgt_view, cfg, options);
            let (_, truth) = test_split(tgt_view, cfg);
            (pred, secs, n_test, n_anom, truth)
        }
        _ => {
            let src_views: Vec<&PreparedSystem> = sources.iter().map(|d| &d.raw).collect();
            let ctx = FitContext {
                sources: &src_views,
                target: &target.raw,
                n_source: cfg.n_source,
                n_target: cfg.n_target,
                max_len: 10,
                embed_dim: cfg.embed_dim,
                seed: cfg.seed,
            };
            let mut method: Box<dyn Method> = match kind {
                MethodKind::DeepLog => Box::new(bl::DeepLog::new()),
                MethodKind::LogAnomaly => Box::new(bl::LogAnomaly::new()),
                MethodKind::PLELog => Box::new(bl::PLELog::new()),
                MethodKind::SpikeLog => Box::new(bl::SpikeLog::new()),
                MethodKind::NeuralLog => Box::new(bl::NeuralLog::new()),
                MethodKind::NeuralLogDirect => Box::new(bl::NeuralLog::direct_source_only()),
                MethodKind::LogRobust => Box::new(bl::LogRobust::new()),
                MethodKind::PreLog => Box::new(bl::PreLog::new()),
                MethodKind::LogTAD => Box::new(bl::LogTAD::new()),
                MethodKind::LogTransfer => Box::new(bl::LogTransfer::new()),
                MethodKind::MetaLog => Box::new(bl::MetaLog::new()),
                _ => unreachable!(),
            };
            let t0 = Instant::now();
            method.fit(&ctx);
            let secs = t0.elapsed().as_secs_f64();
            let (test, truth) = test_split(&target.raw, cfg);
            let pred = method.detect(&test, &target.raw);
            let n_anom = truth.iter().filter(|&&t| t).count();
            (pred, secs, test.len(), n_anom, truth)
        }
    };
    MethodResult {
        method: kind.name().to_string(),
        category: kind.category().to_string(),
        prf: Prf::evaluate(&pred, &truth),
        train_secs: secs,
        n_test,
        n_test_anomalies: n_anom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_methods_are_eleven_in_paper_order() {
        assert_eq!(MethodKind::TABLE_METHODS.len(), 11);
        assert_eq!(MethodKind::TABLE_METHODS[0].name(), "DeepLog");
        assert_eq!(MethodKind::TABLE_METHODS[10].name(), "LogSynergy");
    }

    #[test]
    fn categories_match_paper_types() {
        assert_eq!(MethodKind::LogSynergy.category(), "Supervised Cross-System");
        assert_eq!(MethodKind::LogTAD.category(), "Unsupervised Cross-System");
        assert_eq!(MethodKind::PreLog.category(), "Pre-trained");
    }
}
