//! Experiment setup: configuration, dataset preparation, and per-system
//! data bundles (raw + LEI-interpreted views of the same stream).

use serde::{Deserialize, Serialize};

use logsynergy::config::{ModelConfig, TrainConfig};
use logsynergy::data::{prepare_system, EventTextMode, PreparedSystem};
use logsynergy_embed::HashedEmbedder;
use logsynergy_lei::LeiConfig;
use logsynergy_loggen::{datasets, LogDataset, SystemId};
use logsynergy_logparse::WindowConfig;

/// Experiment-wide knobs. Defaults are the CPU-scale setting; the paper's
/// full-scale numbers live in [`ModelConfig::paper`] / [`TrainConfig::paper`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Log lines generated per dataset (each dataset's Table III count is
    /// scaled down to roughly this size, equalizing compute per system).
    pub logs_per_dataset: usize,
    /// Anomaly-burst density multiplier for scaled runs (see
    /// `DatasetSpec::generate_with`).
    pub anomaly_boost: f64,
    /// Sequences per source system (n_s).
    pub n_source: usize,
    /// Target training slice (n_t).
    pub n_target: usize,
    /// Cap on test sequences (0 = all).
    pub max_test: usize,
    /// Test region starts at this sequence index (0 = right after the
    /// training slice, i.e. at `n_target`). Sweeps that vary `n_target`
    /// pin this to the grid maximum so every point is evaluated on the
    /// same held-out region.
    #[serde(default)]
    pub test_from: usize,
    /// Embedding dimension of the frozen embedder.
    pub embed_dim: usize,
    /// Training epochs for LogSynergy.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// λ_MI (Eq. 5).
    pub lambda_mi: f32,
    /// λ_DA (Eq. 5).
    pub lambda_da: f32,
    /// Global seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            logs_per_dataset: 30_000,
            anomaly_boost: 3.0,
            n_source: 2_000,
            n_target: 500,
            max_test: 2_500,
            embed_dim: 64,
            epochs: 5,
            batch_size: 128,
            lambda_mi: 0.01,
            lambda_da: 0.01,
            test_from: 0,
            seed: 0xE7A1,
        }
    }
}

impl ExperimentConfig {
    /// A faster configuration for smoke tests and hyper-parameter sweeps.
    pub fn quick() -> Self {
        ExperimentConfig {
            logs_per_dataset: 12_000,
            n_source: 900,
            n_target: 250,
            max_test: 1_200,
            epochs: 8,
            ..ExperimentConfig::default()
        }
    }

    /// Per-dataset generation scale that lands near `logs_per_dataset`.
    pub fn scale_for(&self, system: SystemId) -> f64 {
        let spec = datasets::spec_for(system);
        (self.logs_per_dataset as f64 / spec.n_logs as f64).min(1.0)
    }

    /// Generates the (scaled, boosted) dataset for a system.
    pub fn generate(&self, system: SystemId) -> LogDataset {
        datasets::spec_for(system).generate_with(self.scale_for(system), self.anomaly_boost)
    }

    /// The frozen embedder shared by every method.
    pub fn embedder(&self) -> HashedEmbedder {
        HashedEmbedder::new(self.embed_dim, 0xE1B)
    }

    /// LogSynergy model configuration for `k` participating systems.
    pub fn model_config(&self, num_systems: usize) -> ModelConfig {
        let mut m = ModelConfig::scaled(num_systems);
        m.embed_dim = self.embed_dim;
        m
    }

    /// Index where the held-out test region starts.
    pub fn test_start(&self) -> usize {
        self.test_from.max(self.n_target)
    }

    /// LogSynergy training configuration.
    pub fn train_config(&self) -> TrainConfig {
        let mut t = TrainConfig::scaled();
        t.epochs = self.epochs;
        t.batch_size = self.batch_size;
        t.n_source = self.n_source;
        t.n_target = self.n_target;
        t.lambda_mi = self.lambda_mi;
        t.lambda_da = self.lambda_da;
        t.seed = self.seed;
        t
    }
}

/// One system's prepared data in both text modes over the *same* stream:
/// identical sequences/labels, different event texts and embeddings.
pub struct SystemData {
    /// System id.
    pub system: SystemId,
    /// Raw-template view (what baselines consume).
    pub raw: PreparedSystem,
    /// LEI-interpreted view (what LogSynergy consumes).
    pub lei: PreparedSystem,
    /// Generated log-line count.
    pub n_logs: usize,
    /// Anomalous log-line count.
    pub n_anomalous_logs: usize,
}

/// Prepares one system under both text modes.
pub fn prepare(system: SystemId, cfg: &ExperimentConfig) -> SystemData {
    let ds = cfg.generate(system);
    let embedder = cfg.embedder();
    let window = WindowConfig::default();
    let raw = prepare_system(&ds, &EventTextMode::RawTemplate, &embedder, window);
    let lei = prepare_system(
        &ds,
        &EventTextMode::Interpreted(LeiConfig::default()),
        &embedder,
        window,
    );
    SystemData {
        system,
        n_logs: ds.records.len(),
        n_anomalous_logs: ds.records.iter().filter(|r| r.anomalous).count(),
        raw,
        lei,
    }
}

/// Prepares a full group of systems.
pub fn prepare_group(systems: &[SystemId], cfg: &ExperimentConfig) -> Vec<SystemData> {
    systems.iter().map(|&s| prepare(s, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_land_near_target_log_count() {
        let cfg = ExperimentConfig {
            logs_per_dataset: 5_000,
            ..ExperimentConfig::quick()
        };
        for sys in SystemId::ALL {
            let ds = cfg.generate(sys);
            let n = ds.records.len();
            assert!(
                (4_000..=8_000).contains(&n),
                "{sys:?}: {n} logs, wanted ~5000"
            );
        }
    }

    #[test]
    fn raw_and_lei_views_share_sequences() {
        let cfg = ExperimentConfig {
            logs_per_dataset: 3_000,
            ..ExperimentConfig::quick()
        };
        let d = prepare(SystemId::SystemB, &cfg);
        assert_eq!(d.raw.sequences.len(), d.lei.sequences.len());
        for (a, b) in d.raw.sequences.iter().zip(&d.lei.sequences) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.events, b.events);
        }
        assert_ne!(d.raw.event_texts, d.lei.event_texts);
    }
}
