//! Evaluation metrics (paper §IV-A3): precision, recall, F1.

use serde::{Deserialize, Serialize};

/// A binary confusion matrix.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
}

impl Confusion {
    /// Tallies predictions against ground truth.
    pub fn from_predictions(pred: &[bool], truth: &[bool]) -> Self {
        assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
        let mut c = Confusion::default();
        for (&p, &t) in pred.iter().zip(truth) {
            match (p, t) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// `TP / (TP + FP)`; 0 when no positive predictions.
    pub fn precision(&self) -> f64 {
        let d = self.tp + self.fp;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// `TP / (TP + FN)`; 0 when no actual positives.
    pub fn recall(&self) -> f64 {
        let d = self.tp + self.fn_;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Total samples tallied.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }
}

/// P/R/F1 triple in percent, as the paper's tables print them.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Prf {
    /// Precision (%).
    pub precision: f64,
    /// Recall (%).
    pub recall: f64,
    /// F1-score (%).
    pub f1: f64,
}

impl From<Confusion> for Prf {
    fn from(c: Confusion) -> Self {
        Prf {
            precision: c.precision() * 100.0,
            recall: c.recall() * 100.0,
            f1: c.f1() * 100.0,
        }
    }
}

impl Prf {
    /// Convenience constructor from predictions.
    pub fn evaluate(pred: &[bool], truth: &[bool]) -> Self {
        Confusion::from_predictions(pred, truth).into()
    }
}

/// A point on the precision-recall curve.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PrPoint {
    /// Decision threshold.
    pub threshold: f64,
    /// Precision in [0, 1].
    pub precision: f64,
    /// Recall in [0, 1].
    pub recall: f64,
    /// F1 in [0, 1].
    pub f1: f64,
}

/// Sweeps decision thresholds over raw scores, returning one point per
/// distinct score (descending). The paper fixes the threshold at 0.5; this
/// utility quantifies how sensitive a method is to that choice.
pub fn pr_curve(scores: &[f32], truth: &[bool]) -> Vec<PrPoint> {
    assert_eq!(scores.len(), truth.len(), "scores/truth length mismatch");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let total_pos = truth.iter().filter(|&&t| t).count() as f64;
    let mut out = Vec::new();
    let mut tp = 0.0f64;
    let mut fp = 0.0f64;
    let mut i = 0;
    while i < order.len() {
        let thr = scores[order[i]];
        // Consume the whole tie group at this score.
        while i < order.len() && scores[order[i]] == thr {
            if truth[order[i]] {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let recall = if total_pos > 0.0 { tp / total_pos } else { 0.0 };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        out.push(PrPoint {
            threshold: thr as f64,
            precision,
            recall,
            f1,
        });
    }
    out
}

/// The threshold maximizing F1 on a PR curve (ties broken toward the
/// higher threshold), with its point. Returns `None` for empty input.
pub fn best_f1(curve: &[PrPoint]) -> Option<PrPoint> {
    curve.iter().copied().max_by(|a, b| {
        a.f1.partial_cmp(&b.f1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                a.threshold
                    .partial_cmp(&b.threshold)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    })
}

/// Average precision (area under the PR curve by the step rule).
pub fn average_precision(scores: &[f32], truth: &[bool]) -> f64 {
    let curve = pr_curve(scores, truth);
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for p in &curve {
        ap += (p.recall - prev_recall) * p.precision;
        prev_recall = p.recall;
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let p = Prf::evaluate(&[true, false, true], &[true, false, true]);
        assert_eq!(p.precision, 100.0);
        assert_eq!(p.recall, 100.0);
        assert_eq!(p.f1, 100.0);
    }

    #[test]
    fn all_positive_prediction_has_full_recall() {
        let p = Prf::evaluate(
            &[true; 10],
            &[
                true, false, false, false, false, true, false, false, false, false,
            ],
        );
        assert_eq!(p.recall, 100.0);
        assert!((p.precision - 20.0).abs() < 1e-9);
        let f1 = 2.0 * 0.2 * 1.0 / 1.2 * 100.0;
        assert!((p.f1 - f1).abs() < 1e-9);
    }

    #[test]
    fn no_predictions_is_zero() {
        let p = Prf::evaluate(&[false; 4], &[true, false, true, false]);
        assert_eq!(p.precision, 0.0);
        assert_eq!(p.recall, 0.0);
        assert_eq!(p.f1, 0.0);
    }

    #[test]
    fn confusion_counts() {
        let c =
            Confusion::from_predictions(&[true, true, false, false], &[true, false, true, false]);
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (1, 1, 1, 1));
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn pr_curve_on_separable_scores() {
        // Scores perfectly rank the positives first.
        let scores = [0.9, 0.8, 0.2, 0.1];
        let truth = [true, true, false, false];
        let curve = pr_curve(&scores, &truth);
        assert_eq!(curve.len(), 4);
        // At the second threshold both positives are captured cleanly.
        assert!((curve[1].precision - 1.0).abs() < 1e-12);
        assert!((curve[1].recall - 1.0).abs() < 1e-12);
        let best = best_f1(&curve).unwrap();
        assert!((best.f1 - 1.0).abs() < 1e-12);
        assert!((average_precision(&scores, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pr_curve_handles_ties_as_one_group() {
        let scores = [0.5, 0.5, 0.5];
        let truth = [true, false, true];
        let curve = pr_curve(&scores, &truth);
        assert_eq!(curve.len(), 1);
        assert!((curve[0].precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((curve[0].recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_precision_of_random_scores_matches_base_rate_order() {
        // Inverted ranking: AP must be below the perfect 1.0.
        let scores = [0.1, 0.2, 0.8, 0.9];
        let truth = [true, true, false, false];
        assert!(average_precision(&scores, &truth) < 0.8);
    }

    #[test]
    fn best_f1_empty_is_none() {
        assert!(best_f1(&[]).is_none());
    }
}
