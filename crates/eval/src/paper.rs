//! The paper's published numbers (Tables IV and V), embedded for
//! paper-vs-measured reporting. Absolute values are not expected to match
//! (see DESIGN.md §1 — the substrate is synthetic and CPU-scale); the
//! comparison is about *shape*: winners, method-family profiles, and
//! orderings.

use crate::metrics::Prf;

/// One paper cell: (method, target, P%, R%, F1%).
pub type PaperCell = (&'static str, &'static str, f64, f64, f64);

/// Table IV — public datasets (BGL / Spirit / Thunderbird as targets).
pub const TABLE4: &[PaperCell] = &[
    ("DeepLog", "BGL", 10.77, 100.0, 19.44),
    ("DeepLog", "Spirit", 0.99, 100.0, 1.95),
    ("DeepLog", "Thunderbird", 4.60, 100.0, 8.79),
    ("LogAnomaly", "BGL", 11.77, 100.0, 21.06),
    ("LogAnomaly", "Spirit", 10.99, 100.0, 19.80),
    ("LogAnomaly", "Thunderbird", 25.61, 100.0, 40.78),
    ("PLELog", "BGL", 11.16, 38.66, 17.33),
    ("PLELog", "Spirit", 1.17, 89.98, 2.31),
    ("PLELog", "Thunderbird", 5.14, 97.38, 9.77),
    ("SpikeLog", "BGL", 27.92, 51.09, 22.10),
    ("SpikeLog", "Spirit", 33.79, 31.53, 32.62),
    ("SpikeLog", "Thunderbird", 60.66, 68.73, 64.44),
    ("NeuralLog", "BGL", 100.0, 2.01, 3.95),
    ("NeuralLog", "Spirit", 37.33, 73.66, 49.55),
    ("NeuralLog", "Thunderbird", 79.02, 99.83, 88.21),
    ("LogRobust", "BGL", 44.75, 46.67, 45.69),
    ("LogRobust", "Spirit", 19.83, 25.97, 22.49),
    ("LogRobust", "Thunderbird", 69.34, 97.49, 81.04),
    ("PreLog", "BGL", 72.81, 68.63, 70.66),
    ("PreLog", "Spirit", 0.0, 0.0, 0.0),
    ("PreLog", "Thunderbird", 79.51, 96.87, 87.34),
    ("LogTAD", "BGL", 10.27, 78.59, 18.16),
    ("LogTAD", "Spirit", 1.33, 85.55, 2.62),
    ("LogTAD", "Thunderbird", 6.33, 99.30, 11.90),
    ("LogTransfer", "BGL", 13.41, 2.70, 4.50),
    ("LogTransfer", "Spirit", 26.39, 18.85, 21.99),
    ("LogTransfer", "Thunderbird", 85.14, 71.69, 77.84),
    ("MetaLog", "BGL", 15.23, 91.12, 26.10),
    ("MetaLog", "Spirit", 3.13, 15.51, 4.50),
    ("MetaLog", "Thunderbird", 3.00, 3.39, 3.18),
    ("LogSynergy", "BGL", 97.43, 72.83, 83.35),
    ("LogSynergy", "Spirit", 88.91, 92.41, 90.62),
    ("LogSynergy", "Thunderbird", 96.23, 99.83, 97.99),
];

/// Table V — ISP datasets (Systems A / B / C as targets).
pub const TABLE5: &[PaperCell] = &[
    ("DeepLog", "System A", 0.64, 100.0, 1.28),
    ("DeepLog", "System B", 0.16, 100.0, 0.32),
    ("DeepLog", "System C", 4.02, 100.0, 7.73),
    ("LogAnomaly", "System A", 1.04, 99.89, 2.06),
    ("LogAnomaly", "System B", 0.86, 100.0, 1.71),
    ("LogAnomaly", "System C", 5.13, 98.99, 9.75),
    ("PLELog", "System A", 3.24, 89.29, 6.26),
    ("PLELog", "System B", 0.18, 91.64, 0.35),
    ("PLELog", "System C", 6.68, 89.93, 12.42),
    ("SpikeLog", "System A", 31.81, 93.11, 47.43),
    ("SpikeLog", "System B", 0.26, 18.75, 0.51),
    ("SpikeLog", "System C", 2.13, 87.38, 4.16),
    ("NeuralLog", "System A", 29.57, 80.40, 43.24),
    ("NeuralLog", "System B", 100.0, 13.74, 24.16),
    ("NeuralLog", "System C", 100.0, 0.82, 1.63),
    ("LogRobust", "System A", 32.04, 91.39, 47.45),
    ("LogRobust", "System B", 93.40, 37.64, 53.66),
    ("LogRobust", "System C", 88.97, 85.98, 87.45),
    ("PreLog", "System A", 0.0, 0.0, 0.0),
    ("PreLog", "System B", 0.07, 84.82, 0.14),
    ("PreLog", "System C", 0.0, 0.0, 0.0),
    ("LogTAD", "System A", 5.28, 96.41, 10.01),
    ("LogTAD", "System B", 11.94, 99.62, 21.33),
    ("LogTAD", "System C", 35.70, 99.06, 52.48),
    ("LogTransfer", "System A", 31.72, 91.04, 47.05),
    ("LogTransfer", "System B", 24.00, 13.69, 17.43),
    ("LogTransfer", "System C", 0.0, 0.0, 0.0),
    ("MetaLog", "System A", 3.22, 99.77, 6.23),
    ("MetaLog", "System B", 13.79, 36.12, 19.96),
    ("MetaLog", "System C", 78.31, 80.31, 79.30),
    ("LogSynergy", "System A", 92.31, 94.99, 93.63),
    ("LogSynergy", "System B", 91.73, 96.96, 94.27),
    ("LogSynergy", "System C", 92.22, 86.49, 89.26),
];

/// Looks up a paper cell.
pub fn paper_prf(table: &[PaperCell], method: &str, target: &str) -> Option<Prf> {
    table
        .iter()
        .find(|(m, t, ..)| *m == method && *t == target)
        .map(|&(_, _, p, r, f1)| Prf {
            precision: p,
            recall: r,
            f1,
        })
}

/// Shape checks the paper's tables must satisfy — and that the measured
/// tables are asserted against in the harness:
/// LogSynergy wins every target's F1 in the paper.
pub fn logsynergy_wins_everywhere(table: &[PaperCell]) -> bool {
    let targets: std::collections::HashSet<&str> = table.iter().map(|c| c.1).collect();
    targets.iter().all(|t| {
        let ls = paper_prf(table, "LogSynergy", t)
            .map(|p| p.f1)
            .unwrap_or(0.0);
        table
            .iter()
            .filter(|c| c.1 == *t && c.0 != "LogSynergy")
            .all(|c| c.4 < ls)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_cover_eleven_methods_times_three_targets() {
        assert_eq!(TABLE4.len(), 33);
        assert_eq!(TABLE5.len(), 33);
    }

    #[test]
    fn paper_logsynergy_wins_everywhere() {
        assert!(logsynergy_wins_everywhere(TABLE4));
        assert!(logsynergy_wins_everywhere(TABLE5));
    }

    #[test]
    fn lookup_matches_known_cells() {
        let p = paper_prf(TABLE4, "LogSynergy", "Thunderbird").unwrap();
        assert_eq!(p.f1, 97.99);
        let p = paper_prf(TABLE5, "MetaLog", "System C").unwrap();
        assert_eq!(p.f1, 79.30);
        assert!(paper_prf(TABLE4, "Nope", "BGL").is_none());
    }
}
