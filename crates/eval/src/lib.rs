//! # logsynergy-eval
//!
//! The experiment harness: metrics (§IV-A3), a uniform runner over
//! LogSynergy + the nine baselines, and regenerators for **every table and
//! figure** of the paper's evaluation:
//!
//! | Paper artifact | Runner |
//! |---|---|
//! | Table III (datasets) | [`experiments::table3`] |
//! | Table IV (public group) | [`experiments::table4`] |
//! | Table V (ISP group) | [`experiments::table5`] |
//! | Fig. 4a (λ_MI) | [`experiments::fig4a`] |
//! | Fig. 4b (n_s) | [`experiments::fig4b`] |
//! | Fig. 4c (n_t) | [`experiments::fig4c`] |
//! | Fig. 5 (ablation) | [`experiments::fig5`] |
//! | Fig. 6 (lesson learned) | [`experiments::fig6`] |
//! | Fig. 8 (case study) | [`experiments::fig8_case_study`] |

#![warn(missing_docs)]

pub mod experiments;
pub mod methods;
pub mod metrics;
pub mod paper;
pub mod report;
pub mod setup;

pub use methods::{run_method, MethodKind, MethodResult};
pub use metrics::{average_precision, best_f1, pr_curve, Confusion, PrPoint, Prf};
pub use setup::{prepare, prepare_group, ExperimentConfig, SystemData};
