//! Runners that regenerate every table and figure of the paper's
//! evaluation (§IV, §V). Each returns a serializable result that
//! [`crate::report`] renders as text in the paper's layout.

use serde::{Deserialize, Serialize};

use logsynergy_embed::cosine;
use logsynergy_loggen::{datasets, SystemId};

use crate::methods::{run_method, MethodKind, MethodResult};
use crate::setup::{prepare, prepare_group, ExperimentConfig, SystemData};

/// The group a system belongs to (public vs ISP), per §IV-A1.
pub fn group_of(system: SystemId) -> [SystemId; 3] {
    match system {
        SystemId::Bgl | SystemId::Spirit | SystemId::Thunderbird => datasets::public_group(),
        _ => datasets::isp_group(),
    }
}

/// The two source systems for a target (the rest of its group).
pub fn sources_of(target: SystemId) -> Vec<SystemId> {
    group_of(target)
        .iter()
        .copied()
        .filter(|&s| s != target)
        .collect()
}

// --------------------------------------------------------------------------
// Table III — dataset statistics
// --------------------------------------------------------------------------

/// One Table III row: paper-scale numbers next to generated numbers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table3Row {
    /// Dataset name.
    pub dataset: String,
    /// Paper: number of log lines.
    pub paper_logs: usize,
    /// Paper: number of log sequences.
    pub paper_sequences: usize,
    /// Paper: number of anomalous sequences.
    pub paper_anomalies: usize,
    /// Generated log lines (at the experiment scale).
    pub gen_logs: usize,
    /// Generated sequences.
    pub gen_sequences: usize,
    /// Generated anomalous sequences.
    pub gen_anomalies: usize,
}

/// Regenerates Table III at the experiment scale.
pub fn table3(cfg: &ExperimentConfig) -> Vec<Table3Row> {
    SystemId::ALL
        .iter()
        .map(|&sys| {
            let spec = datasets::spec_for(sys);
            let d = prepare(sys, cfg);
            Table3Row {
                dataset: sys.name().to_string(),
                paper_logs: spec.n_logs,
                paper_sequences: spec.n_logs / 5, // window step 5
                paper_anomalies: spec.target_anomalous_sequences,
                gen_logs: d.n_logs,
                gen_sequences: d.raw.sequences.len(),
                gen_anomalies: d.raw.num_anomalous(),
            }
        })
        .collect()
}

// --------------------------------------------------------------------------
// Tables IV & V — overall performance
// --------------------------------------------------------------------------

/// Results for one target system (a column block of Table IV/V).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TargetResults {
    /// Target dataset name.
    pub target: String,
    /// One row per method, in paper order.
    pub rows: Vec<MethodResult>,
}

/// Runs the full method battery for every target in a group.
pub fn run_group_table(
    group: [SystemId; 3],
    methods: &[MethodKind],
    cfg: &ExperimentConfig,
) -> Vec<TargetResults> {
    let data = prepare_group(&group, cfg);
    group
        .iter()
        .enumerate()
        .map(|(ti, &target)| {
            let sources: Vec<&SystemData> = data
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != ti)
                .map(|(_, d)| d)
                .collect();
            let rows = methods
                .iter()
                .map(|&m| run_method(m, &sources, &data[ti], cfg))
                .collect();
            TargetResults {
                target: target.name().to_string(),
                rows,
            }
        })
        .collect()
}

/// Table IV: the public group (BGL / Spirit / Thunderbird as targets).
pub fn table4(cfg: &ExperimentConfig) -> Vec<TargetResults> {
    run_group_table(datasets::public_group(), &MethodKind::TABLE_METHODS, cfg)
}

/// Table V: the ISP group (Systems A / B / C as targets).
pub fn table5(cfg: &ExperimentConfig) -> Vec<TargetResults> {
    run_group_table(datasets::isp_group(), &MethodKind::TABLE_METHODS, cfg)
}

// --------------------------------------------------------------------------
// Fig. 4 — hyper-parameter sweeps
// --------------------------------------------------------------------------

/// One sweep point: parameter value → F1 per target.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub value: f64,
    /// (target name, F1 %) pairs.
    pub f1_by_target: Vec<(String, f64)>,
}

fn sweep<F: Fn(&mut ExperimentConfig, f64)>(
    targets: &[SystemId],
    values: &[f64],
    base: &ExperimentConfig,
    apply: F,
) -> Vec<SweepPoint> {
    // Prepare each target's group once per target (reused across values).
    let prepared: Vec<(SystemId, Vec<SystemData>)> = targets
        .iter()
        .map(|&t| {
            let mut systems = sources_of(t);
            systems.push(t);
            (t, prepare_group(&systems, base))
        })
        .collect();
    values
        .iter()
        .map(|&v| {
            let f1_by_target = prepared
                .iter()
                .map(|(t, data)| {
                    let mut cfg = base.clone();
                    apply(&mut cfg, v);
                    let n = data.len();
                    let sources: Vec<&SystemData> = data[..n - 1].iter().collect();
                    let r = run_method(MethodKind::LogSynergy, &sources, &data[n - 1], &cfg);
                    (t.name().to_string(), r.prf.f1)
                })
                .collect();
            SweepPoint {
                value: v,
                f1_by_target,
            }
        })
        .collect()
}

/// Fig. 4a: F1 vs λ_MI over the paper's grid {0.001, 0.01, 0.05, 0.1, 0.5}.
pub fn fig4a(targets: &[SystemId], cfg: &ExperimentConfig) -> Vec<SweepPoint> {
    sweep(targets, &[0.001, 0.01, 0.05, 0.1, 0.5], cfg, |c, v| {
        c.lambda_mi = v as f32
    })
}

/// Fig. 4b: F1 vs n_s. The paper sweeps 10k..80k; values here are
/// fractions of the configured n_source grid.
pub fn fig4b(targets: &[SystemId], values: &[usize], cfg: &ExperimentConfig) -> Vec<SweepPoint> {
    let vals: Vec<f64> = values.iter().map(|&v| v as f64).collect();
    sweep(targets, &vals, cfg, |c, v| c.n_source = v as usize)
}

/// Fig. 4c: F1 vs n_t (paper sweeps 1k..8k). The test region is pinned at
/// the grid maximum so every sweep point is evaluated on the same
/// held-out windows (otherwise small n_t would be scored on the easy
/// early-stream region).
pub fn fig4c(targets: &[SystemId], values: &[usize], cfg: &ExperimentConfig) -> Vec<SweepPoint> {
    let vals: Vec<f64> = values.iter().map(|&v| v as f64).collect();
    let pin = values.iter().copied().max().unwrap_or(cfg.n_target);
    sweep(targets, &vals, cfg, move |c, v| {
        c.n_target = v as usize;
        c.test_from = pin;
    })
}

// --------------------------------------------------------------------------
// Fig. 5 — ablation study
// --------------------------------------------------------------------------

/// Ablation rows for one target.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationResult {
    /// Target dataset name.
    pub target: String,
    /// Full LogSynergy.
    pub full: MethodResult,
    /// w/o LEI.
    pub no_lei: MethodResult,
    /// w/o SUFE.
    pub no_sufe: MethodResult,
    /// Direct application of NeuralLog (source-trained).
    pub neurallog_direct: MethodResult,
}

/// Fig. 5: ablation across the requested targets.
pub fn fig5(targets: &[SystemId], cfg: &ExperimentConfig) -> Vec<AblationResult> {
    targets
        .iter()
        .map(|&t| {
            let mut systems = sources_of(t);
            systems.push(t);
            let data = prepare_group(&systems, cfg);
            let n = data.len();
            let sources: Vec<&SystemData> = data[..n - 1].iter().collect();
            let target = &data[n - 1];
            AblationResult {
                target: t.name().to_string(),
                full: run_method(MethodKind::LogSynergy, &sources, target, cfg),
                no_lei: run_method(MethodKind::LogSynergyNoLei, &sources, target, cfg),
                no_sufe: run_method(MethodKind::LogSynergyNoSufe, &sources, target, cfg),
                neurallog_direct: run_method(MethodKind::NeuralLogDirect, &sources, target, cfg),
            }
        })
        .collect()
}

// --------------------------------------------------------------------------
// Fig. 6 — cross-group transfer (Lesson Learned)
// --------------------------------------------------------------------------

/// One cross-group transfer result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TransferResult {
    /// Source system.
    pub source: String,
    /// Target system.
    pub target: String,
    /// LogSynergy's result on the target.
    pub result: MethodResult,
}

/// Fig. 6: the four single-source cross-group transfers of §V —
/// BGL→System B, Spirit→System C, System B→BGL, System C→Spirit.
pub fn fig6(cfg: &ExperimentConfig) -> Vec<TransferResult> {
    let pairs = [
        (SystemId::Bgl, SystemId::SystemB),
        (SystemId::Spirit, SystemId::SystemC),
        (SystemId::SystemB, SystemId::Bgl),
        (SystemId::SystemC, SystemId::Spirit),
    ];
    // One source system instead of the usual two: double n_s so the total
    // source-sample budget matches the group experiments.
    let mut cfg = cfg.clone();
    cfg.n_source *= 2;
    pairs
        .iter()
        .map(|&(src, tgt)| {
            let data = prepare_group(&[src, tgt], &cfg);
            let sources: Vec<&SystemData> = vec![&data[0]];
            let result = run_method(MethodKind::LogSynergy, &sources, &data[1], &cfg);
            TransferResult {
                source: src.name().to_string(),
                target: tgt.name().to_string(),
                result,
            }
        })
        .collect()
}

// --------------------------------------------------------------------------
// Fig. 8 — case study
// --------------------------------------------------------------------------

/// The Fig. 8 case study: a *normal* target log event whose raw
/// word-level representation is misleadingly similar to an *anomalous*
/// source event (the mechanism behind LogTransfer's false positive), and
/// how LEI interpretations dissolve that similarity by keeping only the
/// essential event meaning.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CaseStudy {
    /// Raw template of the normal System A event.
    pub target_templates: Vec<String>,
    /// Raw template of the similar-looking anomalous System C event.
    pub source_templates: Vec<String>,
    /// LEI interpretation of the target event.
    pub target_interpretations: Vec<String>,
    /// LEI interpretation of the source event.
    pub source_interpretations: Vec<String>,
    /// Cosine similarity of the two events under raw embeddings.
    pub raw_similarity: f32,
    /// Cosine similarity under LEI-interpreted embeddings.
    pub lei_similarity: f32,
    /// Misleadingness under raw embeddings: similarity to the anomalous
    /// source event minus similarity to the nearest *normal* source event.
    /// Positive = the normal target event looks more like a source anomaly
    /// than like any source normal (LogTransfer's false-positive trigger).
    pub raw_margin: f32,
    /// The same margin under LEI interpretations. Negative = the nearest
    /// source neighbor is now a normal event; the false positive dissolves.
    pub lei_margin: f32,
}

/// Fig. 8: finds the *normal* System A event whose raw representation is
/// most similar to an *anomalous* System C event (the two systems share
/// much vocabulary), then shows LEI interpretations reduce the similarity.
pub fn fig8_case_study(cfg: &ExperimentConfig) -> CaseStudy {
    let data = prepare_group(&[SystemId::SystemC, SystemId::SystemA], cfg);
    let (src, tgt) = (&data[0], &data[1]);

    // Anomalous source events = templates whose interpretation matches an
    // anomalous concept; normal target events = the rest.
    let anomaly_texts: std::collections::HashSet<&'static str> = logsynergy_loggen::ontology()
        .iter()
        .filter(|c| c.anomalous)
        .map(|c| c.interpretation)
        .collect();
    let src_anom: Vec<usize> = (0..src.lei.event_texts.len())
        .filter(|&i| anomaly_texts.contains(src.lei.event_texts[i].as_str()))
        .collect();
    let tgt_norm: Vec<usize> = (0..tgt.lei.event_texts.len())
        .filter(|&i| !anomaly_texts.contains(tgt.lei.event_texts[i].as_str()))
        .collect();
    assert!(!src_anom.is_empty() && !tgt_norm.is_empty());

    let src_norm: Vec<usize> = (0..src.lei.event_texts.len())
        .filter(|&i| !anomaly_texts.contains(src.lei.event_texts[i].as_str()))
        .collect();
    // Misleadingness margin of pairing target event `t` with anomalous
    // source event `s`: how much closer `t` sits to the anomaly than to
    // any *normal* source event, under the given embedding table.
    let margin = |t: usize, s: usize, t_table: &[Vec<f32>], s_table: &[Vec<f32>]| {
        let to_anom = cosine(&t_table[t], &s_table[s]);
        let to_best_normal = src_norm
            .iter()
            .map(|&n| cosine(&t_table[t], &s_table[n]))
            .fold(f32::NEG_INFINITY, f32::max);
        to_anom - to_best_normal
    };

    // The case: the (normal target, anomalous source) pair with the most
    // misleading raw representation.
    let mut best = (tgt_norm[0], src_anom[0], f32::NEG_INFINITY);
    for &t in &tgt_norm {
        for &s in &src_anom {
            let m = margin(t, s, &tgt.raw.event_embeddings, &src.raw.event_embeddings);
            if m > best.2 {
                best = (t, s, m);
            }
        }
    }
    let (ti, sj, raw_margin) = best;
    let lei_margin = margin(ti, sj, &tgt.lei.event_embeddings, &src.lei.event_embeddings);
    CaseStudy {
        target_templates: vec![tgt.raw.templates[ti].clone()],
        source_templates: vec![src.raw.templates[sj].clone()],
        target_interpretations: vec![tgt.lei.event_texts[ti].clone()],
        source_interpretations: vec![src.lei.event_texts[sj].clone()],
        raw_similarity: cosine(&tgt.raw.event_embeddings[ti], &src.raw.event_embeddings[sj]),
        lei_similarity: cosine(&tgt.lei.event_embeddings[ti], &src.lei.event_embeddings[sj]),
        raw_margin,
        lei_margin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_partition_the_six_systems() {
        for sys in SystemId::ALL {
            let g = group_of(sys);
            assert!(g.contains(&sys));
            assert_eq!(sources_of(sys).len(), 2);
            assert!(!sources_of(sys).contains(&sys));
        }
    }

    #[test]
    fn table3_reports_all_six_datasets() {
        let cfg = ExperimentConfig {
            logs_per_dataset: 2_500,
            ..ExperimentConfig::quick()
        };
        let rows = table3(&cfg);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].dataset, "BGL");
        assert_eq!(rows[0].paper_logs, 1_356_817);
        assert_eq!(rows[0].paper_anomalies, 29_092);
        for r in &rows {
            assert!(r.gen_sequences > 0);
            assert!(r.gen_anomalies > 0, "{}: no anomalies generated", r.dataset);
        }
    }

    #[test]
    fn fig8_case_study_shows_similarity_reduction() {
        let cfg = ExperimentConfig {
            logs_per_dataset: 4_000,
            ..ExperimentConfig::quick()
        };
        let cs = fig8_case_study(&cfg);
        assert!(
            cs.raw_margin > 0.0,
            "a misleading raw pair must exist (margin {})",
            cs.raw_margin
        );
        assert!(
            cs.lei_margin < 0.0,
            "under LEI the nearest source neighbor must be normal (margin {})",
            cs.lei_margin
        );
        assert!(!cs.target_interpretations.is_empty());
    }
}
