//! Developer diagnostic: which anomaly concepts does LogSynergy miss on a
//! target, and what do the missed windows look like?

use std::collections::HashMap;

use logsynergy::detector::Detector;
use logsynergy::model::LogSynergyModel;
use logsynergy::trainer::{build_training_set, train, TrainOptions};
use logsynergy_eval::experiments::sources_of;
use logsynergy_eval::{prepare_group, ExperimentConfig, SystemData};
use logsynergy_loggen::{ontology, SystemId};
use rand::SeedableRng;

fn main() {
    let target: SystemId = match std::env::args().nth(1).as_deref() {
        Some("bgl") => SystemId::Bgl,
        Some("spirit") => SystemId::Spirit,
        Some("a") => SystemId::SystemA,
        Some("b") => SystemId::SystemB,
        Some("c") => SystemId::SystemC,
        _ => SystemId::Thunderbird,
    };
    let cfg = ExperimentConfig::quick();
    let mut systems = sources_of(target);
    systems.push(target);
    let data = prepare_group(&systems, &cfg);
    let n = data.len();
    let sources: Vec<&SystemData> = data[..n - 1].iter().collect();
    let tgt = &data[n - 1];

    let src_views: Vec<_> = sources.iter().map(|d| &d.lei).collect();
    let mcfg = cfg.model_config(3);
    let tcfg = cfg.train_config();
    let mut rng = rand::rngs::StdRng::seed_from_u64(tcfg.seed);
    let mut model = LogSynergyModel::new(mcfg.clone(), &mut rng);
    let set = build_training_set(
        &src_views,
        &tgt.lei,
        tcfg.n_source,
        tcfg.n_target,
        10,
        cfg.embed_dim,
    );
    let anom_train = set.y.iter().filter(|&&y| y > 0.5).count();
    println!("train: {} samples, {} anomalous", set.y.len(), anom_train);
    let hist = train(&mut model, &set, &tcfg, TrainOptions::default());
    for (e, h) in hist.iter().enumerate() {
        println!(
            "epoch {e}: total {:.4} anom {:.4} sys {:.4} mi {:.4} da {:.4} omega {:.2}",
            h.total, h.loss_anomaly, h.loss_system, h.loss_mi, h.loss_da, h.omega
        );
    }

    let (_, test) = tgt.lei.split(cfg.n_target, cfg.max_test);
    let scores = Detector::new(&model).scores(&test, &tgt.lei.event_embeddings);

    // Anomalous interpretation texts from the ontology.
    let anomaly_interps: HashMap<String, &'static str> = ontology()
        .iter()
        .filter(|c| c.anomalous)
        .map(|c| (c.interpretation.to_string(), c.name))
        .collect();

    let mut missed: HashMap<&'static str, usize> = HashMap::new();
    let mut caught: HashMap<&'static str, usize> = HashMap::new();
    for (s, score) in test.iter().zip(&scores) {
        if !s.label {
            continue;
        }
        let mut names: Vec<&'static str> = s
            .events
            .iter()
            .filter_map(|&e| {
                anomaly_interps
                    .get(&tgt.lei.event_texts[e as usize])
                    .copied()
            })
            .collect();
        names.sort_unstable();
        names.dedup();
        let bucket = if *score > 0.5 {
            &mut caught
        } else {
            &mut missed
        };
        for nm in names {
            *bucket.entry(nm).or_default() += 1;
        }
        if names_empty_fallback(&s.events, &tgt.lei.event_texts, &anomaly_interps) {
            *bucket.entry("(no-anomaly-interp-in-window)").or_default() += 1;
        }
    }
    println!("\ncaught: {caught:?}");
    println!("missed: {missed:?}");

    // Score distribution per anomaly concept on the test set.
    let mut by_concept: HashMap<&'static str, Vec<f32>> = HashMap::new();
    for (s, score) in test.iter().zip(&scores) {
        if !s.label {
            continue;
        }
        for &e in &s.events {
            if let Some(&nm) = anomaly_interps.get(&tgt.lei.event_texts[e as usize]) {
                by_concept.entry(nm).or_default().push(*score);
            }
        }
    }
    for (nm, v) in &by_concept {
        let mean = v.iter().sum::<f32>() / v.len() as f32;
        let min = v.iter().cloned().fold(f32::INFINITY, f32::min);
        println!("test {nm}: n={} mean={:.3} min={:.3}", v.len(), mean, min);
    }

    // Training-set anomaly concept histogram (which concepts did the model see?).
    let mut train_hist: HashMap<&'static str, usize> = HashMap::new();
    for (k, src) in sources.iter().enumerate() {
        let picked = src.lei.spread(tcfg.n_source);
        for s in &picked {
            if !s.label {
                continue;
            }
            for &e in &s.events {
                if let Some(&nm) = anomaly_interps.get(&src.lei.event_texts[e as usize]) {
                    *train_hist.entry(nm).or_default() += 1;
                }
            }
        }
        println!("source {k} done");
    }
    println!("train anomaly events: {train_hist:?}");
}

fn names_empty_fallback(
    events: &[u32],
    texts: &[String],
    interps: &HashMap<String, &'static str>,
) -> bool {
    !events
        .iter()
        .any(|&e| interps.contains_key(&texts[e as usize]))
}
