//! Developer utility: quick shape check of the method battery on one
//! target. Not part of the paper's example set (see the workspace
//! `examples/` directory for those).

use logsynergy_eval::experiments::sources_of;
use logsynergy_eval::{prepare_group, run_method, ExperimentConfig, MethodKind, SystemData};
use logsynergy_loggen::SystemId;

fn main() {
    let target: SystemId = match std::env::args().nth(1).as_deref() {
        Some("bgl") => SystemId::Bgl,
        Some("spirit") => SystemId::Spirit,
        Some("a") => SystemId::SystemA,
        Some("b") => SystemId::SystemB,
        Some("c") => SystemId::SystemC,
        _ => SystemId::Thunderbird,
    };
    let cfg = ExperimentConfig::quick();
    let mut systems = sources_of(target);
    systems.push(target);
    let data = prepare_group(&systems, &cfg);
    let n = data.len();
    let sources: Vec<&SystemData> = data[..n - 1].iter().collect();
    println!("target: {}", target.name());
    for kind in MethodKind::TABLE_METHODS {
        let r = run_method(kind, &sources, &data[n - 1], &cfg);
        println!(
            "{:<22} P {:>6.2}  R {:>6.2}  F1 {:>6.2}   ({:.1}s, {} test / {} anom)",
            r.method,
            r.prf.precision,
            r.prf.recall,
            r.prf.f1,
            r.train_secs,
            r.n_test,
            r.n_test_anomalies
        );
    }
}
