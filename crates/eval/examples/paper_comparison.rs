//! Prints a paper-vs-measured comparison for Tables IV/V from the JSON
//! results the bench harness wrote (`results/table4_public.json`,
//! `results/table5_isp.json`). Run after `cargo bench`:
//!
//! `cargo run --release -p logsynergy-eval --example paper_comparison`

use logsynergy_eval::experiments::TargetResults;
use logsynergy_eval::paper::{paper_prf, PaperCell, TABLE4, TABLE5};

fn compare(title: &str, path: &str, table: &[PaperCell]) {
    let Ok(raw) = std::fs::read_to_string(path) else {
        eprintln!("{title}: no results at {path} (run `cargo bench` first)");
        return;
    };
    let results: Vec<TargetResults> = serde_json::from_str(&raw).expect("valid results JSON");
    println!("== {title}: paper F1 vs measured F1 ==");
    print!("{:<22}", "Method");
    for t in &results {
        print!(" | {:^19}", t.target);
    }
    println!();
    print!("{:<22}", "");
    for _ in &results {
        print!(" | {:>8} {:>8}", "paper", "measured");
    }
    println!();
    let n = results.first().map(|t| t.rows.len()).unwrap_or(0);
    for m in 0..n {
        let name = &results[0].rows[m].method;
        print!("{name:<22}");
        for t in &results {
            let measured = t.rows[m].prf.f1;
            match paper_prf(table, name, &t.target) {
                Some(p) => print!(" | {:>8.2} {:>8.2}", p.f1, measured),
                None => print!(" | {:>8} {:>8.2}", "-", measured),
            }
        }
        println!();
    }
    // Shape check: does the measured table keep the paper's headline —
    // LogSynergy first on every target?
    let mut wins = true;
    for t in &results {
        let ls = t
            .rows
            .iter()
            .find(|r| r.method == "LogSynergy")
            .map(|r| r.prf.f1)
            .unwrap_or(0.0);
        for r in &t.rows {
            if r.method != "LogSynergy" && r.prf.f1 >= ls {
                wins = false;
                println!(
                    "  !! {}: {} ({:.2}) >= LogSynergy ({:.2})",
                    t.target, r.method, r.prf.f1, ls
                );
            }
        }
    }
    println!(
        "shape: LogSynergy best on every target: {}\n",
        if wins {
            "YES (matches paper)"
        } else {
            "NO (see above)"
        }
    );
}

fn main() {
    compare("Table IV (public)", "results/table4_public.json", TABLE4);
    compare("Table V (ISP)", "results/table5_isp.json", TABLE5);
}
