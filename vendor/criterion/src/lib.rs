//! Offline, dependency-free stand-in for the `criterion` crate.
//!
//! Runs each benchmark a configured number of iterations after a short
//! warm-up and prints mean wall-clock time per iteration (plus throughput
//! when set). No statistics, plots, or HTML reports — just enough to keep
//! `criterion`-based bench targets building and producing usable numbers
//! offline.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing harness.
pub struct Bencher {
    iters: u64,
    /// Mean seconds per iteration, filled by [`Bencher::iter`].
    elapsed_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed run.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_per_iter = start.elapsed().as_secs_f64() / self.iters as f64;
    }
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Top-level benchmark harness.
pub struct Criterion {
    sample_size: u64,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the iteration count per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for API compatibility; the stub keys iteration count off
    /// [`Criterion::sample_size`] alone.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Configures this instance from CLI args (no-op in the stub).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed_per_iter: 0.0,
        };
        f(&mut b);
        println!(
            "bench {:<40} {:>12}/iter",
            id,
            human_time(b.elapsed_per_iter)
        );
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Final-summary hook (no-op in the stub).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.parent.sample_size,
            elapsed_per_iter: 0.0,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.elapsed_per_iter > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / b.elapsed_per_iter)
            }
            Some(Throughput::Bytes(n)) if b.elapsed_per_iter > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 / b.elapsed_per_iter)
            }
            _ => String::new(),
        };
        println!(
            "bench {:<40} {:>12}/iter{}",
            full,
            human_time(b.elapsed_per_iter),
            rate
        );
        self
    }

    /// Closes the group.
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group, in either criterion macro form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion__ = $config;
            $($target(&mut criterion__);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut g = c.benchmark_group("grouped");
        g.throughput(Throughput::Elements(100));
        g.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn harness_runs_benches() {
        let mut c = Criterion::default().sample_size(3);
        sample_bench(&mut c);
    }
}
