//! Offline, dependency-free stand-in for the `serde_json` crate.
//!
//! Prints and parses the vendored `serde::Value` data model as JSON text.
//! Supports the entry points this workspace calls: [`to_string`],
//! [`to_string_pretty`], [`to_vec`], [`from_str`], and [`from_slice`].
//! Non-finite floats serialize as `null`, matching real `serde_json`.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, pretty: bool, indent: usize) {
    let pad = |out: &mut String, n: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a trailing `.0` on integral floats, matching
                // serde_json's output shape.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_value(out, item, pretty, indent + 1);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_escaped(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, pretty, indent + 1);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), false, 0);
    Ok(out)
}

/// Serializes `value` to human-readable (2-space indented) JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), true, 0);
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a following \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.parse_hex4()?;
                                    0x10000 + ((hi as u32 - 0xD800) << 10) + (lo as u32 - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                hi as u32
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-scan a full UTF-8 char starting at the consumed byte.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if v <= i64::MAX as u64 {
                        return Ok(Value::Int(-(v as i64)));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self
            .peek()
            .ok_or_else(|| self.err("unexpected end of input"))?
        {
            b'n' => self.parse_literal("null", Value::Null),
            b't' => self.parse_literal("true", Value::Bool(true)),
            b'f' => self.parse_literal("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(self.err(&format!("unexpected byte `{}`", other as char))),
        }
    }
}

/// Parses a `Value` from JSON text (exposed for tests and tooling).
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserializes `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse_value(s)?)
}

/// Deserializes `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(from_str::<u32>("17").unwrap(), 17);
        assert_eq!(from_str::<String>(r#""a\nbA""#).unwrap(), "a\nbA");
    }

    #[test]
    fn nan_serializes_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn containers_roundtrip_through_text() {
        let v = vec![1.5f32, -2.0, 0.25];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f32>>(&s).unwrap(), v);

        let mut m = std::collections::HashMap::new();
        m.insert("k".to_string(), vec![1u32, 2]);
        let s = to_string_pretty(&m).unwrap();
        assert_eq!(
            from_str::<std::collections::HashMap<String, Vec<u32>>>(&s).unwrap(),
            m
        );
    }

    #[test]
    fn pretty_output_is_indented() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1u8);
        let s = to_string_pretty(&m).unwrap();
        assert_eq!(s, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(from_str::<u32>("1 x").is_err());
        assert!(from_str::<Vec<u8>>("[1,]").is_err());
    }
}
