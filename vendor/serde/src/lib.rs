//! Offline, dependency-free stand-in for the `serde` crate.
//!
//! Instead of serde's serializer/visitor machinery, this stub uses a single
//! in-memory [`Value`] data model: [`Serialize`] converts a type *to* a
//! `Value`, [`Deserialize`] builds a type *from* one. The companion
//! `serde_derive` proc-macro generates impls for named-field structs and
//! unit-variant enums (the only shapes this workspace derives), and
//! `serde_json` prints/parses `Value` as JSON text.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// The in-memory serialization data model (a superset of JSON).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative JSON numbers without fraction/exponent).
    Int(i64),
    /// Unsigned integer (non-negative JSON numbers without fraction/exponent).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Key/value map; insertion-ordered to keep output stable.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents widened to `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric contents as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric contents as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }
}

/// Looks up a field by name in an object's entry list (derive-macro helper).
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible to the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types constructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let v = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), value)))?;
                <$t>::try_from(v).map_err(|_| Error::custom(format!(
                    concat!("value {} out of range for ", stringify!($t)), v)))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let v = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), value)))?;
                <$t>::try_from(v).map_err(|_| Error::custom(format!(
                    concat!("value {} out of range for ", stringify!($t)), v)))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected f64, got {value:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| Error::custom(format!("expected f32, got {value:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {value:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!(
                "expected 2-element array, got {other:?}"
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::custom(format!(
                "expected 3-element array, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialized maps are byte-stable across runs.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn numeric_coercion_across_kinds() {
        // Integers written as JSON `3` must deserialize into floats.
        assert_eq!(f64::from_value(&Value::UInt(3)).unwrap(), 3.0);
        assert_eq!(f32::from_value(&Value::Int(-2)).unwrap(), -2.0);
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1.5f64);
        assert_eq!(
            HashMap::<String, f64>::from_value(&m.to_value()).unwrap(),
            m
        );
    }
}
