//! Offline, dependency-free stand-in for `serde_derive`.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the input
//! `TokenStream` is walked directly to extract the type name plus field or
//! variant names, and the impls are emitted as formatted source text. Only
//! the shapes this workspace derives are supported — non-generic structs
//! with named fields, and enums whose variants are all unit-like. The
//! `#[serde(default)]` field attribute is honored on deserialization.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

enum Input {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<String> },
}

/// True for the exact attribute `#[serde(default)]` (possibly among other
/// serde options); doc comments and unrelated attributes never match.
fn is_serde_default(attr: &Group) -> bool {
    let mut it = attr.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match it.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default")),
        _ => false,
    }
}

fn parse_fields(body: Group) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = body.stream().into_iter().peekable();
    let mut pending_default = false;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(attr)) = iter.next() {
                    pending_default |= is_serde_default(&attr);
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // Swallow a visibility qualifier like `pub(crate)`.
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    iter.next();
                }
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!(
                        "vendored serde_derive: expected `:` after field `{name}`, got {other:?}"
                    ),
                }
                // Skip the type: everything up to the next comma that is not
                // nested inside generic angle brackets (groups hide their own
                // commas, so only `<`/`>` depth needs tracking).
                let mut depth = 0i32;
                for tt in iter.by_ref() {
                    if let TokenTree::Punct(p) = &tt {
                        match p.as_char() {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            ',' if depth == 0 => break,
                            _ => {}
                        }
                    }
                }
                fields.push(Field {
                    name,
                    default: pending_default,
                });
                pending_default = false;
            }
            _ => {}
        }
    }
    fields
}

fn parse_variants(body: Group) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.stream().into_iter();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => variants.push(id.to_string()),
            TokenTree::Group(_) => {
                panic!("vendored serde_derive supports only unit enum variants")
            }
            _ => {}
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw != "struct" && kw != "enum" {
                    continue; // `pub` or another modifier
                }
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("vendored serde_derive: expected type name, got {other:?}"),
                };
                for tt in iter.by_ref() {
                    match tt {
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                            return if kw == "struct" {
                                Input::Struct {
                                    name,
                                    fields: parse_fields(g),
                                }
                            } else {
                                Input::Enum {
                                    name,
                                    variants: parse_variants(g),
                                }
                            };
                        }
                        TokenTree::Punct(p) if p.as_char() == '<' => {
                            panic!("vendored serde_derive does not support generic types")
                        }
                        _ => {}
                    }
                }
                panic!("vendored serde_derive: `{name}` has no braced body (tuple structs unsupported)");
            }
            _ => {}
        }
    }
    panic!("vendored serde_derive: no struct or enum found in derive input")
}

/// Derives the vendored `serde::Serialize` (conversion to `serde::Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input) {
        Input::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "entries__.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n",
                        f = f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut entries__: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(entries__)\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("vendored serde_derive emitted invalid Rust")
}

/// Derives the vendored `serde::Deserialize` (construction from `serde::Value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input) {
        Input::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let missing = if f.default {
                        "::std::default::Default::default()".to_string()
                    } else {
                        format!(
                            "return Err(::serde::Error::custom(\
                             \"missing field `{}` in {}\"))",
                            f.name, name
                        )
                    };
                    format!(
                        "{f}: match ::serde::field(entries__, \"{f}\") {{\n\
                             Some(v__) => ::serde::Deserialize::from_value(v__)?,\n\
                             None => {missing},\n\
                         }},\n",
                        f = f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value__: &::serde::Value) -> \
                         Result<Self, ::serde::Error> {{\n\
                         let entries__ = value__.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                         Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Some(\"{v}\") => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value__: &::serde::Value) -> \
                         Result<Self, ::serde::Error> {{\n\
                         match value__.as_str() {{\n\
                             {arms}\
                             _ => Err(::serde::Error::custom(\
                                 \"unknown variant for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("vendored serde_derive emitted invalid Rust")
}
