//! Offline, dependency-free stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with the `parking_lot` calling convention:
//! `lock()`/`read()`/`write()` return guards directly (no `Result`), and a
//! poisoned lock is recovered transparently instead of propagating a panic.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with `parking_lot`'s panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with `parking_lot`'s panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
