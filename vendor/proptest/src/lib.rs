//! Offline, dependency-free stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/[`prop_oneof!`]
//! macros, [`strategy::Strategy`] with `prop_map`, range and [`Just`]
//! strategies, `any::<bool>()`, `collection::vec`, and character-class
//! string patterns like `"[a-z]{1,6}"`. Cases are generated from a
//! fixed-seed deterministic PRNG; there is **no shrinking** — a failing
//! case panics with its message and case index.

/// Deterministic case generation and failure plumbing.
pub mod test_runner {
    /// Runner configuration (case count only).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property within a case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    /// The PRNG handed to strategies (xoshiro256++, fixed seeding).
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Deterministic per-case generator.
        pub fn for_case(case: u64) -> Self {
            // SplitMix64 expansion of the case index.
            let mut sm = case.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xA076_1D64_78BD_642F;
            let mut s = [0u64; 4];
            for slot in s.iter_mut() {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                *slot = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runs `body` for each generated case, panicking on the first failure.
    pub fn run<F>(config: ProptestConfig, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for case in 0..config.cases {
            let mut rng = TestRng::for_case(case as u64);
            if let Err(TestCaseError(msg)) = body(&mut rng) {
                panic!("proptest case #{case} failed: {msg}");
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// Builds a [`Union`]; used by the `prop_oneof!` expansion.
    pub fn union<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }

    /// Boxes a strategy with inference-friendly types (`prop_oneof!` helper).
    pub fn box_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (lo as i128 + v) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// `&str` strategies: a tiny pattern language of character classes and
    /// literals, each optionally repeated — e.g. `"[a-z]{1,6}"`, `"ab[0-9]"`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Atom: character class or literal char.
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed [ in string strategy")
                    + i;
                let mut cls = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad range in string strategy");
                        cls.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        cls.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                cls
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional {m} / {m,n} repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed { in string strategy")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad repeat bound"),
                        n.trim().parse::<usize>().expect("bad repeat bound"),
                    ),
                    None => {
                        let m = body.trim().parse::<usize>().expect("bad repeat bound");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Anything usable as the size argument of [`vec`].
    pub trait IntoSizeRange {
        /// Lower and inclusive upper bound on the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // Bounded so arithmetic-heavy properties stay finite.
            (rng.unit_f64() * 2.0 - 1.0) as f32 * 1.0e3
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.unit_f64() * 2.0 - 1.0) * 1.0e6
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> super::strategy::Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// The glob-import surface used by the tests (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left__, right__) = (&$a, &$b);
        $crate::prop_assert!(
            left__ == right__,
            "assertion failed: `{:?}` != `{:?}`",
            left__,
            right__
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left__, right__) = (&$a, &$b);
        $crate::prop_assert!(left__ == right__, $($fmt)*);
    }};
}

/// Uniform choice among several strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$($crate::strategy::box_strategy($s)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run($cfg, |rng__| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng__);)*
                #[allow(unreachable_code)]
                (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::test_runner::TestRng::for_case(3);
        for _ in 0..100 {
            let s = crate::strategy::Strategy::generate(&"[a-c]{1,2}", &mut rng);
            assert!((1..=2).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, f in -1.0f32..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), Just(2)], b in any::<bool>()) {
            prop_assert!(v == 1 || v == 2);
            let _ = b;
        }
    }
}
