//! Offline, dependency-free stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::channel` subset this workspace uses: MPMC
//! channels (`bounded`/`unbounded`) with cloneable `Sender`/`Receiver`
//! handles, blocking bounded sends (backpressure), `try_recv`,
//! `recv_timeout`, and disconnection tracking. Built on
//! `std::sync::{Mutex, Condvar}` — slower than lock-free crossbeam, but
//! semantically equivalent for the queue depths used here.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity; the message is handed back.
        Full(T),
        /// All receivers are gone; the message is handed back.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// All senders are gone and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders are gone and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] on disconnection.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half of a channel; clone freely for multiple producers.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel; clone freely for multiple consumers.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                // Wake receivers blocked on an empty queue so they observe
                // the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                // Wake senders blocked on a full queue.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = st.cap.is_some_and(|c| st.queue.len() >= c);
                if !full {
                    st.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).unwrap();
            }
        }

        /// Non-blocking send: enqueues immediately or hands the message
        /// back with the reason (`Full` under backpressure, `Disconnected`
        /// when every receiver is gone).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.cap.is_some_and(|c| st.queue.len() >= c) {
                return Err(TrySendError::Full(value));
            }
            st.queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => {
                    self.shared.not_full.notify_one();
                    Ok(v)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive; errors only when every sender is gone and the
        /// queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
            }
        }
    }

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Channel holding at most `cap` in-flight messages; senders block when
    /// full (backpressure).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap))
    }

    /// Channel with no capacity limit; sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn unbounded_fifo() {
            let (s, r) = unbounded();
            for i in 0..10 {
                s.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(r.recv().unwrap(), i);
            }
        }

        #[test]
        fn bounded_blocks_then_drains() {
            let (s, r) = bounded(1);
            s.send(0u32).unwrap();
            let h = std::thread::spawn(move || s.send(1).is_ok());
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(r.recv().unwrap(), 0);
            assert_eq!(r.recv().unwrap(), 1);
            assert!(h.join().unwrap());
        }

        #[test]
        fn disconnect_is_observable() {
            let (s, r) = unbounded::<u8>();
            s.send(1).unwrap();
            drop(s);
            assert_eq!(r.recv(), Ok(1));
            assert_eq!(r.recv(), Err(RecvError));
            assert_eq!(r.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                r.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn timeout_on_empty_open_channel() {
            let (_s, r) = unbounded::<u8>();
            assert_eq!(
                r.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn try_send_reports_full_and_disconnected() {
            let (s, r) = bounded(1);
            assert!(s.try_send(1u8).is_ok());
            assert_eq!(s.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(r.recv(), Ok(1));
            assert!(s.try_send(3).is_ok());
            drop(r);
            assert_eq!(s.try_send(4), Err(TrySendError::Disconnected(4)));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (s, r) = unbounded::<u8>();
            drop(r);
            assert_eq!(s.send(7), Err(SendError(7)));
        }

        #[test]
        fn mpmc_all_messages_arrive_once() {
            let (s, r) = bounded(4);
            let mut handles = Vec::new();
            for t in 0..4u64 {
                let s = s.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..25u64 {
                        s.send(t * 25 + i).unwrap();
                    }
                }));
            }
            drop(s);
            let mut got = Vec::new();
            while let Ok(v) = r.recv() {
                got.push(v);
            }
            for h in handles {
                h.join().unwrap();
            }
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
