//! Offline, dependency-free stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! subset of the `rand 0.8` API the repository actually uses is vendored
//! here: [`Rng`], [`SeedableRng`], [`rngs::StdRng`]/[`rngs::SmallRng`],
//! [`distributions::Uniform`], and [`seq::SliceRandom`]. The generators are
//! xoshiro256++ (for `StdRng`) seeded through SplitMix64 — not the ChaCha
//! stream of the real crate, so absolute random sequences differ from
//! upstream `rand`, but every consumer in this repo only relies on
//! *seed-determinism* (same seed ⇒ same stream), which holds.

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable by [`Rng::gen`] from the "standard" distribution.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with uniform range sampling. The blanket [`SampleRange`] impls
/// below are what ties `gen_range(lo..hi)`'s return type to the range's
/// element type during inference, exactly as in real `rand`.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range on empty range"
                );
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "gen_range on empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
float_sample_uniform!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// High-level sampling helpers; blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ generator (stands in for `rand`'s ChaCha-based `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in s.iter_mut() {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be degenerate; SplitMix64 cannot produce
            // four zeros from any seed, but keep the guard for clarity.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Small fast generator; same implementation as [`StdRng`] here.
    pub type SmallRng = StdRng;

    /// Mock generators for tests.
    pub mod mock {
        use super::RngCore;

        /// Generator yielding an arithmetic sequence of `u64`s.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            /// Starts at `initial`, advancing by `increment` per draw.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    step: increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.step);
                out
            }
        }
    }
}

/// Distribution sampling (`Uniform` only — the subset this repo uses).
pub mod distributions {
    use super::{RngCore, SampleRange, StandardSample};

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: Copy> Uniform<T> {
        /// New uniform distribution over `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            Uniform { lo, hi }
        }
    }

    impl<T: Copy + PartialOrd> Distribution<T> for Uniform<T>
    where
        core::ops::Range<T>: SampleRange<T>,
    {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            (self.lo..self.hi).sample_single(rng)
        }
    }

    /// The standard distribution (what [`super::Rng::gen`] draws from).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl<T: StandardSample> Distribution<T> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::standard_sample(rng)
        }
    }
}

/// Sequence helpers (`shuffle`/`choose` subset).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn unit_interval_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        let mut r = StdRng::seed_from_u64(11);
        let d = Uniform::new(0.25f32, 0.75f32);
        for _ in 0..1_000 {
            let v = d.sample(&mut r);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
