#!/usr/bin/env python3
"""Appends a measured-results snapshot to EXPERIMENTS.md from results/*.json.

Run after `cargo bench --workspace`:
    python3 scripts/snapshot_experiments.py
"""
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"
MARKER = "<!-- snapshot tables inserted below by the final bench run -->"


def load(name):
    p = RESULTS / f"{name}.json"
    if not p.exists():
        return None
    return json.loads(p.read_text())


def group_table(title, data):
    out = [f"### {title}", "", "| Method | " + " | ".join(
        f"{t['target']} P/R/F1" for t in data) + " |"]
    out.append("|" + "---|" * (len(data) + 1))
    n = len(data[0]["rows"])
    for m in range(n):
        name = data[0]["rows"][m]["method"]
        cells = []
        for t in data:
            p = t["rows"][m]["prf"]
            cells.append(f"{p['precision']:.1f} / {p['recall']:.1f} / {p['f1']:.1f}")
        out.append("| " + name + " | " + " | ".join(cells) + " |")
    out.append("")
    return "\n".join(out)


def sweep_table(title, points):
    targets = [name for name, _ in points[0]["f1_by_target"]]
    out = [f"### {title}", "", "| value | " + " | ".join(targets) + " |",
           "|" + "---|" * (len(targets) + 1)]
    for p in points:
        vals = " | ".join(f"{f1:.1f}" for _, f1 in p["f1_by_target"])
        out.append(f"| {p['value']} | {vals} |")
    out.append("")
    return "\n".join(out)


def fill_table1(doc):
    t1 = load("table1_syntax_gap")
    if not t1:
        return doc
    _rows, gaps = t1
    raw = sum(g["mean_raw_cosine"] for g in gaps) / len(gaps)
    lei = sum(g["mean_lei_cosine"] for g in gaps) / len(gaps)
    return doc.replace("RAW_T1", f"{raw:.2f}").replace("LEI_T1", f"{lei:.2f}")


def main():
    sections = []
    t4 = load("table4_public")
    if t4:
        sections.append(group_table("Table IV measured (public group)", t4))
    t5 = load("table5_isp")
    if t5:
        sections.append(group_table("Table V measured (ISP group)", t5))
    f4 = load("fig4_hyperparams")
    if f4:
        a, b, c = f4
        sections.append(sweep_table("Fig. 4a measured (F1 vs λ_MI)", a))
        sections.append(sweep_table("Fig. 4b measured (F1 vs n_s)", b))
        sections.append(sweep_table("Fig. 4c measured (F1 vs n_t)", c))
    f5 = load("fig5_ablation")
    if f5:
        out = ["### Fig. 5 measured (ablation, F1 %)", "",
               "| Target | LogSynergy | w/o LEI | w/o SUFE | NeuralLog direct |",
               "|---|---|---|---|---|"]
        for r in f5:
            out.append(
                f"| {r['target']} | {r['full']['prf']['f1']:.1f} | "
                f"{r['no_lei']['prf']['f1']:.1f} | {r['no_sufe']['prf']['f1']:.1f} | "
                f"{r['neurallog_direct']['prf']['f1']:.1f} |")
        out.append("")
        sections.append("\n".join(out))
    f6 = load("fig6_lessons")
    if f6:
        out = ["### Fig. 6 measured (cross-group transfer)", "",
               "| Source → Target | P | R | F1 |", "|---|---|---|---|"]
        for r in f6:
            p = r["result"]["prf"]
            out.append(f"| {r['source']} → {r['target']} | {p['precision']:.1f} "
                       f"| {p['recall']:.1f} | {p['f1']:.1f} |")
        out.append("")
        sections.append("\n".join(out))
    f8 = load("fig8_case_study")
    if f8:
        sections.append(
            "### Fig. 8 measured (case study)\n\n"
            f"- raw similarity {f8['raw_similarity']:.3f} "
            f"(margin over nearest normal {f8['raw_margin']:+.3f})\n"
            f"- LEI similarity {f8['lei_similarity']:.3f} "
            f"(margin {f8['lei_margin']:+.3f})\n"
            f"- target event: `{f8['target_templates'][0]}` → "
            f"\"{f8['target_interpretations'][0]}\"\n"
            f"- source event: `{f8['source_templates'][0]}` → "
            f"\"{f8['source_interpretations'][0]}\"\n")
    f7 = load("fig7_pipeline_throughput")
    if f7:
        sections.append(
            "### Fig. 7 measured (deployment pipeline)\n\n"
            f"- {f7['logs']} logs, {f7['windows']} windows, "
            f"{f7['model_calls']} model calls, {f7['reports']} reports, "
            f"{f7['new_templates']} templates interpreted online, "
            f"{f7['throughput_logs_per_sec']:.0f} logs/s\n")

    doc = (ROOT / "EXPERIMENTS.md").read_text()
    doc = fill_table1(doc)
    head = doc.split(MARKER)[0]
    (ROOT / "EXPERIMENTS.md").write_text(head + MARKER + "\n\n" + "\n".join(sections))
    print(f"wrote {len(sections)} snapshot sections")


if __name__ == "__main__":
    sys.exit(main())
