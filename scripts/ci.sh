#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
# Run from the repo root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> telemetry off-feature build (instrumentation must compile out)"
cargo check -p logsynergy-telemetry --no-default-features

echo "==> fault-injection feature tests (chaos suite, fixed seeds)"
# The chaos scenarios are deterministic (seeded FaultPlans) but involve
# real panics, retries, and injected latency; the timeout turns a wedged
# pipeline into a CI failure instead of a hung job (liveness gate).
timeout 60 cargo test -p logsynergy --features fault-injection -q
timeout 60 cargo test -p logsynergy-pipeline --features fault-injection -q
timeout 60 cargo test -p logsynergy-serve --features fault-injection -q
# The WAL codec/recovery proptests (incl. the group-commit byte-parity
# and mid-batch torn-tail properties) must also hold with the fault
# plumbing compiled in — the wal_fault consults sit on the append path.
timeout 120 cargo test -p logsynergy --features fault-injection --test wal_proptests -q

echo "==> quant feature tests (int8 kernels, fast primitives, agreement gate)"
# The int8 path is opt-in; its kernel proptests, fused-primitive parity
# tests, and the trained-model f32-agreement gate only exist with the
# feature on.
cargo test -p logsynergy-nn --features quant -q
cargo test -p logsynergy --features quant -q
cargo test -p logsynergy-pipeline --features quant -q

echo "==> fault-injection compile-out gate"
# Release build WITHOUT the feature must carry zero injected code: the
# panic marker string is only referenced from injection sites, so its
# absence from the binary proves the optimizer deleted them all (and the
# Fig. 7 numbers below are measured on exactly this binary).
cargo build -q --release -p logsynergy-cli
if grep -aq "logsynergy-fault-injected" target/release/logsynergy; then
  echo "FAIL: fault-injection code survives in the no-feature release binary" >&2
  exit 1
fi
echo "compile-out gate OK: no fault marker in the release binary"

echo "==> WAL fault-point compile-out gate"
# The durable-transport fault points are named by string constants only
# referenced from injection sites, so the no-feature release binary must
# not contain them — and a fault-injection build must (else the gate is
# vacuous). This proves the WAL hot path carries zero injected code in
# the binary the throughput numbers are measured on.
for marker in "wal.append" "wal.roll" "wal.recover"; do
  if grep -aq "$marker" target/release/logsynergy; then
    echo "FAIL: WAL fault point '$marker' survives in the no-feature release binary" >&2
    exit 1
  fi
done
cargo build -q --release -p logsynergy-cli \
  --features logsynergy/fault-injection,logsynergy-pipeline/fault-injection \
  --target-dir target/fault-gate
for marker in "wal.append" "wal.roll" "wal.recover"; do
  if ! grep -aq "$marker" target/fault-gate/release/logsynergy; then
    echo "FAIL: fault-injection build lost the '$marker' point (gate is vacuous)" >&2
    exit 1
  fi
done
echo "compile-out gate OK: wal.append/wal.roll/wal.recover absent by default, present with fault-injection"

echo "==> quant compile-out gate"
# Same proof for the int8 path: the qgemm marker string is pinned into
# every binary that links the quantized scorer, so the default release
# binary must not contain it — and a --features quant build must.
if grep -aq "logsynergy-int8-qgemm" target/release/logsynergy; then
  echo "FAIL: int8 qgemm code survives in the no-feature release binary" >&2
  exit 1
fi
cargo build -q --release -p logsynergy-cli --features quant \
  --target-dir target/quant-gate
if ! grep -aq "logsynergy-int8-qgemm" target/quant-gate/release/logsynergy; then
  echo "FAIL: quant build lost the int8 qgemm marker (gate is vacuous)" >&2
  exit 1
fi
echo "compile-out gate OK: int8 marker absent by default, present with --features quant"

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> serving-pipeline throughput smoke (quick mode)"
# Quick Fig. 7 run: small stream, full sweep, and the bench's built-in
# assertion that batched/sharded/cached serving reproduces the unbatched
# baseline bit for bit.
LOGSYNERGY_BENCH_QUICK=1 cargo bench --bench fig7_pipeline_throughput

echo "==> quant accuracy + throughput smoke (quick mode)"
# Quick quant_scoring run: asserts ≥ 99.5% verdict agreement with f32,
# |ΔF1| ≤ 0.005, and int8 model-tier throughput ≥ 5× the recorded
# Fig. 7 model-tier rate; refreshes results/quant.json.
LOGSYNERGY_BENCH_QUICK=1 cargo bench -p logsynergy-bench --features quant --bench quant_scoring

echo "==> telemetry overhead contract (quick mode)"
# Paired on/off repetitions of the Fig. 7 serving run; asserts the
# instrumented median stays within the 2% overhead contract and refreshes
# results/telemetry_overhead.json.
LOGSYNERGY_BENCH_QUICK=1 cargo bench --bench telemetry_overhead

echo "==> group-commit WAL throughput smoke (quick mode)"
# Quick durable-vs-in-memory run: asserts group commit buys ≥ 3× over
# per-record flush on the isolated WAL ack path, durable stays within
# 1.5× of in-memory at the Fig. 7 operating point, and (quick-mode
# smoke gate) durable throughput ≥ 0.5× in-memory there; refreshes
# results/wal_group_commit.json.
LOGSYNERGY_BENCH_QUICK=1 cargo bench -p logsynergy-bench --bench wal_group_commit

echo "==> metrics snapshot smoke"
# A real CLI run must produce a parseable JSON snapshot whose verdict-tier
# counters partition the window count exactly.
metrics_file="$(mktemp)"
cargo run -q --release -p logsynergy-cli -- pipeline \
  --target system-b --metrics-out "$metrics_file" >/dev/null
python3 - "$metrics_file" <<'PY'
import json, sys
snap = json.load(open(sys.argv[1]))
c = snap["counters"]
tiers = c["pipeline.tier.pattern"] + c["pipeline.tier.cache"] + c["pipeline.tier.model"]
assert tiers == c["pipeline.windows"] > 0, (tiers, c["pipeline.windows"])
assert c["pipeline.logs"] > 0
print(f"metrics smoke OK: {c['pipeline.logs']} logs, {c['pipeline.windows']} windows")
PY
rm -f "$metrics_file"

echo "==> ingest daemon smoke (serve, two tenants, SIGTERM drain)"
# Start the daemon on an ephemeral port, stream mixed NDJSON + syslog
# lines from two tenants over real sockets, SIGTERM it, and assert the
# drained summary's accounting: every streamed line accepted, ingest
# accepted == pipeline logs, six resolution buckets exactly partition
# the window count, and the /metrics scrape is non-empty.
smoke_dir="$(mktemp -d)"
cat > "$smoke_dir/tenants.conf" <<'EOF'
tenant edge token=edge-secret shards=2
tenant lab  token=lab-secret
EOF
# Run the release binary directly (built by the compile-out gate above):
# backgrounding `cargo run` would put cargo, not the daemon, behind
# $serve_pid and the SIGTERM below would never reach the drain path.
target/release/logsynergy serve \
  --tenants-file "$smoke_dir/tenants.conf" --listen 127.0.0.1:0 \
  --metrics-listen 127.0.0.1:0 --addr-file "$smoke_dir/addr.json" \
  > "$smoke_dir/summary.json" 2> "$smoke_dir/serve.log" &
serve_pid=$!
# The daemon quick-trains its model before binding; allow a few minutes.
for _ in $(seq 1 600); do
  [ -s "$smoke_dir/addr.json" ] && break
  kill -0 "$serve_pid" 2>/dev/null || break
  sleep 0.5
done
[ -s "$smoke_dir/addr.json" ] || { cat "$smoke_dir/serve.log" >&2; exit 1; }
python3 - "$smoke_dir/addr.json" <<'PY'
import json, socket, sys
addr = json.load(open(sys.argv[1]))
host, port = addr["listen"].rsplit(":", 1)

def stream(token, system, n):
    s = socket.create_connection((host, int(port)))
    s.sendall(f"HELLO {token}\n".encode())
    lines = []
    for i in range(n):
        if i % 2 == 0:
            lines.append('{"system":"%s","timestamp":%d,"message":"smoke line %d ok"}' % (system, i, i))
        else:
            lines.append("Jan  1 00:00:%02d %s smoke line %d ok" % (i % 60, system, i))
    s.sendall(("\n".join(lines) + "\n").encode())
    s.shutdown(socket.SHUT_WR)
    resp = b""
    while chunk := s.recv(65536):
        resp += chunk
    s.close()
    return json.loads(resp.decode().strip().splitlines()[-1])

for token, system in (("edge-secret", "edge-sys"), ("lab-secret", "lab-sys")):
    summary = stream(token, system, 500)
    assert summary["accepted"] == 500, summary
    assert summary["rejected"] == summary["shed"] == summary["parse_errors"] == 0, summary

mhost, mport = addr["metrics"].rsplit(":", 1)
m = socket.create_connection((mhost, int(mport)))
m.sendall(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
scrape = b""
while chunk := m.recv(65536):
    scrape += chunk
m.close()
assert b"ingest" in scrape and len(scrape) > 200, scrape[:200]
print("daemon smoke: 1000 lines streamed, metrics scrape OK")
PY
kill -TERM "$serve_pid"
wait "$serve_pid"
python3 - "$smoke_dir/summary.json" <<'PY'
import json, sys
out = json.load(open(sys.argv[1]))
ing, pipe = out["ingest"], out["pipeline"]
assert ing["accepted"] == 1000 == pipe["logs"], out
assert ing["rejected"] == ing["shed"] == ing["parse_errors"] == 0, out
buckets = (pipe["pattern_hits"] + pipe["cache_hits"] + pipe["model_calls"]
           + pipe["degraded"] + pipe["shed"] + pipe["quarantined"])
assert buckets == pipe["windows"] > 0, out
print(f"drain summary OK: {pipe['logs']} logs, {pipe['windows']} windows, exact accounting")
PY
rm -rf "$smoke_dir"

echo "==> WAL kill-and-recover smoke (serve --wal-dir, SIGKILL, restart)"
# Durable-transport contract over a real process kill: stream N records
# into a --wal-dir daemon, SIGKILL it the moment the client has its
# summary (every accepted record is flush-before-ack durable), restart
# on the same WAL directory, stream M more, and SIGTERM-drain. The final
# summary must account for all N+M records exactly once — the cursor
# counters carry across the crash and the unprocessed suffix replays.
wal_dir="$(mktemp -d)"
cat > "$wal_dir/tenants.conf" <<'EOF'
tenant edge token=edge-secret
EOF
stream_wal_lines() { # <addr-file> <start-index> <count>
  python3 - "$1" "$2" "$3" <<'PY'
import json, socket, sys
addr = json.load(open(sys.argv[1]))
host, port = addr["listen"].rsplit(":", 1)
start, n = int(sys.argv[2]), int(sys.argv[3])
s = socket.create_connection((host, int(port)))
s.sendall(b"HELLO edge-secret\n")
lines = ['{"system":"wal-sys","timestamp":%d,"message":"wal smoke line %d ok"}'
         % (i, i) for i in range(start, start + n)]
s.sendall(("\n".join(lines) + "\n").encode())
s.shutdown(socket.SHUT_WR)
resp = b""
while chunk := s.recv(65536):
    resp += chunk
s.close()
summary = json.loads(resp.decode().strip().splitlines()[-1])
assert summary["accepted"] == n, summary
assert summary["rejected"] == summary["shed"] == summary["parse_errors"] == 0, summary
print(f"streamed [{start}, {start + n}): accepted {n}")
PY
}
start_wal_daemon() { # <addr-file> <summary-file>
  target/release/logsynergy serve \
    --tenants-file "$wal_dir/tenants.conf" --listen 127.0.0.1:0 \
    --wal-dir "$wal_dir/wal" --addr-file "$1" \
    > "$2" 2> "$wal_dir/serve.log" &
  serve_pid=$!
  for _ in $(seq 1 600); do
    [ -s "$1" ] && break
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.5
  done
  [ -s "$1" ] || { cat "$wal_dir/serve.log" >&2; exit 1; }
}
start_wal_daemon "$wal_dir/addr1.json" "$wal_dir/summary1.json"
stream_wal_lines "$wal_dir/addr1.json" 0 300
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
start_wal_daemon "$wal_dir/addr2.json" "$wal_dir/summary2.json"
stream_wal_lines "$wal_dir/addr2.json" 300 200
kill -TERM "$serve_pid"
wait "$serve_pid"
python3 - "$wal_dir/summary2.json" <<'PY'
import json, sys
out = json.load(open(sys.argv[1]))
ing, pipe = out["ingest"], out["pipeline"]
# Ingest counters are per-process (200 this run); pipeline counters are
# cursor-durable and cumulative across the SIGKILL (all 500 records).
assert ing["accepted"] == 200, out
assert pipe["logs"] == 500, out
buckets = (pipe["pattern_hits"] + pipe["cache_hits"] + pipe["model_calls"]
           + pipe["degraded"] + pipe["shed"] + pipe["quarantined"])
assert buckets == pipe["windows"] > 0, out
assert pipe.get("crashed_workers", 0) == 0, out
print(f"kill-and-recover OK: 500 logs across a SIGKILL, {pipe['windows']} windows, exact accounting")
PY
rm -rf "$wal_dir"

echo "CI OK"
