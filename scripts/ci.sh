#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
# Run from the repo root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> telemetry off-feature build (instrumentation must compile out)"
cargo check -p logsynergy-telemetry --no-default-features

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> serving-pipeline throughput smoke (quick mode)"
# Quick Fig. 7 run: small stream, full sweep, and the bench's built-in
# assertion that batched/sharded/cached serving reproduces the unbatched
# baseline bit for bit.
LOGSYNERGY_BENCH_QUICK=1 cargo bench --bench fig7_pipeline_throughput

echo "==> telemetry overhead contract (quick mode)"
# Paired on/off repetitions of the Fig. 7 serving run; asserts the
# instrumented median stays within the 2% overhead contract and refreshes
# results/telemetry_overhead.json.
LOGSYNERGY_BENCH_QUICK=1 cargo bench --bench telemetry_overhead

echo "==> metrics snapshot smoke"
# A real CLI run must produce a parseable JSON snapshot whose verdict-tier
# counters partition the window count exactly.
metrics_file="$(mktemp)"
cargo run -q --release -p logsynergy-cli -- pipeline \
  --target system-b --metrics-out "$metrics_file" >/dev/null
python3 - "$metrics_file" <<'PY'
import json, sys
snap = json.load(open(sys.argv[1]))
c = snap["counters"]
tiers = c["pipeline.tier.pattern"] + c["pipeline.tier.cache"] + c["pipeline.tier.model"]
assert tiers == c["pipeline.windows"] > 0, (tiers, c["pipeline.windows"])
assert c["pipeline.logs"] > 0
print(f"metrics smoke OK: {c['pipeline.logs']} logs, {c['pipeline.windows']} windows")
PY
rm -f "$metrics_file"

echo "CI OK"
