#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
# Run from the repo root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> serving-pipeline throughput smoke (quick mode)"
# Quick Fig. 7 run: small stream, full sweep, and the bench's built-in
# assertion that batched/sharded/cached serving reproduces the unbatched
# baseline bit for bit.
LOGSYNERGY_BENCH_QUICK=1 cargo bench --bench fig7_pipeline_throughput

echo "CI OK"
