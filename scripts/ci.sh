#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
# Run from the repo root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "CI OK"
