//! Quickstart: the full LogSynergy loop on small synthetic data.
//!
//! 1. Generate logs for two mature source systems and one new target.
//! 2. Show the LEI dialogue (Fig. 2): prompt → standardized interpretations.
//! 3. Train LogSynergy (SUFE + domain adaptation) on sources + a sliver of
//!    the target, detect on the target's future stream, print P/R/F1.
//!
//! Run with: `cargo run --release --example quickstart`

use logsynergy::api::Pipeline;
use logsynergy::detector::Detector;
use logsynergy_eval::Prf;
use logsynergy_lei::{LeiConfig, LlmInterpreter};
use logsynergy_loggen::{datasets, ontology, SyntaxProfile, SystemId};

fn main() {
    // ---------------------------------------------------------- LEI demo
    println!("== LEI: one prompt, standardized interpretations (Fig. 2) ==\n");
    let concepts = ontology();
    let spirit = SyntaxProfile::new(SystemId::Spirit, &concepts);
    let templates: Vec<String> = [20usize, 27, 23]
        .iter()
        .map(|&i| spirit.template_text(&concepts[i]))
        .collect();
    let template_refs: Vec<&str> = templates.iter().map(|s| s.as_str()).collect();
    let lei = LlmInterpreter::new(LeiConfig::default());
    println!("{}", lei.prompt(SystemId::Spirit, &template_refs));
    println!("--- simulated LLM reply ---");
    for (i, t) in templates.iter().enumerate() {
        let interp = lei.interpret(SystemId::Spirit, t);
        println!("{}. {}", i + 1, interp.text);
    }

    // ------------------------------------------------- train and detect
    println!("\n== Transfer: BGL + Spirit -> Thunderbird (new system) ==\n");
    let mut pipeline = Pipeline::scaled();
    pipeline.train_config.epochs = 5;
    pipeline.train_config.n_source = 900;
    pipeline.train_config.n_target = 250;

    println!("generating and preparing datasets (parse -> window -> LEI -> embed)…");
    let src_bgl = pipeline.prepare(&datasets::bgl().generate_with(0.009, 4.0));
    let src_spirit = pipeline.prepare(&datasets::spirit().generate_with(0.0025, 4.0));
    let target = pipeline.prepare(&datasets::thunderbird().generate_with(0.017, 4.0));
    println!(
        "  target: {} sequences ({} anomalous), {} templates (review: {:?})",
        target.sequences.len(),
        target.num_anomalous(),
        target.templates.len(),
        target.review_stats,
    );

    println!("training LogSynergy…");
    let (model, history) = pipeline.fit(&[&src_bgl, &src_spirit], &target);
    println!(
        "  {} parameters, final epoch loss {:.4}",
        model.num_parameters(),
        history.last().map(|h| h.total).unwrap_or(f32::NAN),
    );

    let (_, test) = target.split(pipeline.train_config.n_target, 1500);
    let truth: Vec<bool> = test.iter().map(|s| s.label).collect();
    let detector = Detector::new(&model);
    let pred = detector.detect(&test, &target.event_embeddings);
    let prf = Prf::evaluate(&pred, &truth);
    println!(
        "\ndetection on {} held-out sequences ({} anomalous):",
        test.len(),
        truth.iter().filter(|&&t| t).count()
    );
    println!(
        "  precision {:.2}%  recall {:.2}%  F1 {:.2}%",
        prf.precision, prf.recall, prf.f1
    );

    // --------------------------------------------------- anomaly report
    let reports = detector.reports(&test, &target);
    if let Some(r) = reports.first() {
        println!("\nfirst anomaly report (p={:.2}):", r.probability);
        for line in r.interpretations.iter().take(4) {
            println!("  -> {line}");
        }
    }
}
