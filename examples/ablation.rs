//! Fig. 5 ablation on one public and one ISP target: full LogSynergy vs
//! w/o LEI vs w/o SUFE vs the direct application of NeuralLog.
//!
//! Run with: `cargo run --release --example ablation`

use logsynergy_eval::experiments::fig5;
use logsynergy_eval::report::render_ablation;
use logsynergy_eval::ExperimentConfig;
use logsynergy_loggen::SystemId;

fn main() {
    let cfg = ExperimentConfig::quick();
    println!("running the Fig. 5 ablation on Thunderbird and System B…\n");
    let results = fig5(&[SystemId::Thunderbird, SystemId::SystemB], &cfg);
    println!("{}", render_ablation(&results));
    for r in &results {
        println!(
            "{}: LEI contributes {:+.1} F1 points, SUFE {:+.1}, transfer learning {:+.1}",
            r.target,
            r.full.prf.f1 - r.no_lei.prf.f1,
            r.full.prf.f1 - r.no_sufe.prf.f1,
            r.full.prf.f1 - r.neurallog_direct.prf.f1,
        );
    }
}
