//! The §VI deployment workflow (Fig. 7) end to end: train LogSynergy
//! offline, then stream a new system's logs through the
//! collection → detection → report pipeline with the pattern-library fast
//! path, and print the operator-facing alerts.
//!
//! Run with: `cargo run --release --example production_pipeline`

use logsynergy::api::Pipeline;
use logsynergy_lei::LeiConfig;
use logsynergy_loggen::{datasets, SystemId};
use logsynergy_pipeline::{run_pipeline, EventVectorizer, MessagingSink, ModelScorer, RawLog};

fn main() {
    // ------------------------------------------------- offline training
    println!("offline phase: training LogSynergy for the new System B…");
    let mut pipeline = Pipeline::scaled();
    pipeline.train_config.epochs = 5;
    pipeline.train_config.n_source = 900;
    pipeline.train_config.n_target = 250;
    let src_a = pipeline.prepare(&datasets::system_a().generate_with(0.0055, 4.0));
    let src_c = pipeline.prepare(&datasets::system_c().generate_with(0.017, 4.0));
    let target_history = datasets::system_b().generate_with(0.014, 4.0);
    let target = pipeline.prepare(&target_history);
    let (model, _) = pipeline.fit(&[&src_a, &src_c], &target);
    println!("  trained ({} parameters)", model.num_parameters());

    // --------------------------------------------------- online serving
    // Warm-start the online vectorizer on the training slice's raw logs so
    // the serving template space matches the offline one, then stream the
    // *future* logs through the pipeline.
    let split_at = pipeline.train_config.n_target * 5 + 10; // sequences -> logs
    let (history_logs, live_logs) = target_history.records.split_at(split_at);

    let mut vectorizer = EventVectorizer::new(
        SystemId::SystemB,
        pipeline.model_config.embed_dim,
        LeiConfig::default(),
    );
    vectorizer.warm_start(history_logs.iter().map(|r| r.message.as_str()));

    let source: Vec<RawLog> = live_logs
        .iter()
        .map(|r| RawLog {
            system: "system-b".into(),
            timestamp: r.timestamp,
            message: r.message.clone(),
        })
        .collect();
    let true_anomalous_logs = live_logs.iter().filter(|r| r.anomalous).count();
    println!(
        "online phase: streaming {} live logs ({} anomalous lines)…",
        source.len(),
        true_anomalous_logs
    );

    let sink = MessagingSink::new();
    let summary = run_pipeline(source, vectorizer, ModelScorer::new(model), sink.clone());

    println!("\npipeline summary:");
    println!("  logs processed     {}", summary.logs);
    println!("  windows evaluated  {}", summary.windows);
    println!(
        "  fast-path hits     {} ({:.1}%)",
        summary.pattern_hits,
        100.0 * summary.pattern_hits as f64 / summary.windows.max(1) as f64
    );
    println!("  score-cache hits   {}", summary.cache_hits);
    println!("  model invocations  {}", summary.model_calls);
    println!("  new templates      {}", summary.new_templates);
    println!("  reports sent       {}", summary.reports);
    println!("  throughput         {:.0} logs/s", summary.throughput);

    let outbox = sink.outbox();
    if let Some((sms, email)) = outbox.first() {
        println!("\nfirst alert SMS:\n  {sms}");
        println!(
            "\nfirst alert email:\n{}",
            email.lines().take(6).collect::<Vec<_>>().join("\n")
        );
    }
}
