//! The Table I phenomenon: the same anomalous event rendered by different
//! systems shares almost no surface syntax — and LEI closes the gap.
//!
//! Run with: `cargo run --release --example syntax_gap`

use logsynergy_embed::{cosine, HashedEmbedder};
use logsynergy_lei::{LeiConfig, LlmInterpreter};
use logsynergy_loggen::{by_name, ontology, SyntaxProfile, SystemId};
use rand::SeedableRng;

fn main() {
    let concepts = ontology();
    let lei = LlmInterpreter::new(LeiConfig {
        hallucination_rate: 0.0,
        ..LeiConfig::default()
    });
    let embedder = HashedEmbedder::new(64, 0xE1B);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    println!("== Table I: same anomaly, different syntax ==\n");
    for name in ["network_interruption", "parity_error"] {
        let cid = by_name(&concepts, name);
        let c = &concepts[cid.0 as usize];
        println!("anomalous event: {name}");
        let mut rendered = Vec::new();
        for sys in [SystemId::Spirit, SystemId::Bgl] {
            let profile = SyntaxProfile::new(sys, &concepts);
            let msg = profile.render(c, &mut rng);
            println!("  {:<12} {msg}", sys.name());
            rendered.push((sys, profile.template_text(c)));
        }
        // Raw similarity vs LEI-unified similarity.
        let raw_a = embedder.embed(&rendered[0].1);
        let raw_b = embedder.embed(&rendered[1].1);
        let int_a = lei.interpret(rendered[0].0, &rendered[0].1).text;
        let int_b = lei.interpret(rendered[1].0, &rendered[1].1).text;
        let lei_a = embedder.embed(&int_a);
        let lei_b = embedder.embed(&int_b);
        println!("  interpretation: \"{int_a}\"");
        println!(
            "  embedding cosine: raw {:.3}  ->  after LEI {:.3}\n",
            cosine(&raw_a, &raw_b),
            cosine(&lei_a, &lei_b)
        );
    }

    println!("LEI rewrites every system's dialect into one canonical sentence,");
    println!("so anomaly knowledge learned on one system transfers to another.");
}
