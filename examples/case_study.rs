//! The Fig. 8 case study: a normal System A sequence that looks
//! misleadingly similar to an anomalous System C sequence under raw
//! word-level representations (LogTransfer's false positive), and how LEI
//! interpretations dissolve the similarity.
//!
//! Run with: `cargo run --release --example case_study`

use logsynergy_eval::experiments::fig8_case_study;
use logsynergy_eval::report::render_case_study;
use logsynergy_eval::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig {
        logs_per_dataset: 8_000,
        ..ExperimentConfig::quick()
    };
    let cs = fig8_case_study(&cfg);
    println!("{}", render_case_study(&cs));
    println!(
        "under raw word-level representations the normal System A event sits\n\
         {:+.3} closer to a System C ANOMALY than to any System C normal event\n\
         (LogTransfer's false-positive trigger); under LEI interpretations the\n\
         margin is {:+.3} — its nearest neighbor is a normal event again.",
        cs.raw_margin, cs.lei_margin
    );
}
