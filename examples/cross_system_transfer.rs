//! Lesson-learned (Fig. 6): transfer works rich → simple, not the other
//! way. BGL/Spirit are anomaly-rich supercomputers whose knowledge covers
//! Systems B/C; the reverse starves the target of anomaly coverage.
//!
//! Run with: `cargo run --release --example cross_system_transfer`

use logsynergy_eval::experiments::fig6;
use logsynergy_eval::report::render_transfers;
use logsynergy_eval::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::quick();
    println!("running four single-source cross-group transfers (§V)…\n");
    let results = fig6(&cfg);
    println!("{}", render_transfers(&results));

    let rich_to_simple: f64 = results.iter().take(2).map(|r| r.result.prf.f1).sum::<f64>() / 2.0;
    let simple_to_rich: f64 = results.iter().skip(2).map(|r| r.result.prf.f1).sum::<f64>() / 2.0;
    println!("mean F1 rich->simple: {rich_to_simple:.1}%   simple->rich: {simple_to_rich:.1}%");
    println!(
        "\nLogSynergy assumes the source systems' anomaly knowledge covers the\n\
         target's (paper §V). Supercomputer logs cover the simpler CDMS\n\
         systems; the reverse leaves target anomaly types unseen, so recall\n\
         collapses even though LEI has unified the syntax."
    );
}
