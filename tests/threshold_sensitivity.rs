//! Extension experiment: sensitivity of LogSynergy to the fixed 0.5
//! decision threshold (§III-E). The paper fixes 0.5 for all methods; this
//! test verifies that choice is benign — the PR-curve's best-F1 point is
//! not materially better than F1 at 0.5.

use logsynergy::detector::Detector;
use logsynergy::model::LogSynergyModel;
use logsynergy::trainer::{build_training_set, train, TrainOptions};
use logsynergy_eval::experiments::sources_of;
use logsynergy_eval::{best_f1, pr_curve, prepare_group, ExperimentConfig, Prf, SystemData};
use logsynergy_loggen::SystemId;
use rand::SeedableRng;

#[test]
fn fixed_threshold_is_near_optimal() {
    let cfg = ExperimentConfig::quick();
    let target = SystemId::Thunderbird;
    let mut systems = sources_of(target);
    systems.push(target);
    let data = prepare_group(&systems, &cfg);
    let n = data.len();
    let sources: Vec<&SystemData> = data[..n - 1].iter().collect();
    let tgt = &data[n - 1];

    let src_views: Vec<_> = sources.iter().map(|d| &d.lei).collect();
    let mcfg = cfg.model_config(3);
    let tcfg = cfg.train_config();
    let mut rng = rand::rngs::StdRng::seed_from_u64(tcfg.seed);
    let mut model = LogSynergyModel::new(mcfg.clone(), &mut rng);
    let set = build_training_set(
        &src_views,
        &tgt.lei,
        tcfg.n_source,
        tcfg.n_target,
        10,
        cfg.embed_dim,
    );
    train(&mut model, &set, &tcfg, TrainOptions::default());

    let (_, test) = tgt.lei.split(cfg.n_target, cfg.max_test);
    let truth: Vec<bool> = test.iter().map(|s| s.label).collect();
    let scores = Detector::new(&model).scores(&test, &tgt.lei.event_embeddings);

    let pred_05: Vec<bool> = scores.iter().map(|&s| s > 0.5).collect();
    let f1_05 = Prf::evaluate(&pred_05, &truth).f1 / 100.0;

    let curve = pr_curve(&scores, &truth);
    let best = best_f1(&curve).expect("non-empty curve");
    assert!(
        f1_05 >= best.f1 * 0.93,
        "F1@0.5 = {f1_05:.3} should be within 7% of the PR-optimal {:.3} (thr {:.3})",
        best.f1,
        best.threshold
    );
    assert!(f1_05 > 0.8, "absolute quality floor: {f1_05:.3}");
}
