//! Deployment-pipeline integration: a trained model serving a live stream
//! through the Fig. 7 dataflow must report the injected bursts without
//! flooding operators.

use logsynergy::api::Pipeline;
use logsynergy_lei::LeiConfig;
use logsynergy_loggen::{datasets, SystemId};
use logsynergy_pipeline::{run_pipeline, EventVectorizer, MemorySink, ModelScorer, RawLog};

#[test]
fn trained_model_serves_live_stream() {
    let mut p = Pipeline::scaled();
    p.train_config.epochs = 4;
    p.train_config.n_source = 700;
    p.train_config.n_target = 200;

    let src_a = p.prepare(&datasets::system_a().generate_with(0.004, 4.0));
    let src_c = p.prepare(&datasets::system_c().generate_with(0.012, 4.0));
    let history = datasets::system_b().generate_with(0.01, 4.0);
    let target = p.prepare(&history);
    let (model, _) = p.fit(&[&src_a, &src_c], &target);

    let split_at = p.train_config.n_target * 5 + 10;
    let (warm, live) = history.records.split_at(split_at);
    let mut vectorizer = EventVectorizer::new(
        SystemId::SystemB,
        p.model_config.embed_dim,
        LeiConfig::default(),
    );
    vectorizer.warm_start(warm.iter().map(|r| r.message.as_str()));

    let source: Vec<RawLog> = live
        .iter()
        .map(|r| RawLog {
            system: "b".into(),
            timestamp: r.timestamp,
            message: r.message.clone(),
        })
        .collect();
    let n_anomalous = live.iter().filter(|r| r.anomalous).count();
    assert!(
        n_anomalous > 20,
        "live stream needs anomalies, got {n_anomalous}"
    );

    let sink = MemorySink::new();
    let tele_before = logsynergy_telemetry::global().snapshot();
    let summary = run_pipeline(source, vectorizer, ModelScorer::new(model), sink.clone());
    let tele_after = logsynergy_telemetry::global().snapshot();

    assert_eq!(summary.logs as usize, live.len());
    assert!(summary.reports > 0, "bursts must be reported: {summary:?}");
    // The generator draws normal events i.i.d., which is the worst case
    // for pattern caching (production streams repeat heavily — the
    // paper's motivation for the fast path). Assert the mechanism, not a
    // hit rate: repeats are served from the library, and every model call
    // populated it.
    assert!(
        summary.pattern_hits > 0,
        "repeated patterns must hit the library: {summary:?}"
    );
    assert_eq!(
        summary.pattern_hits + summary.cache_hits + summary.model_calls,
        summary.windows,
        "every window is fast-pathed, cache-served, or scored: {summary:?}"
    );
    // A healthy, fault-free run must never exercise the robustness paths:
    // nothing degrades, sheds, quarantines, retries, or restarts.
    assert_eq!(summary.degraded, 0, "{summary:?}");
    assert_eq!(summary.shed, 0, "{summary:?}");
    assert_eq!(summary.quarantined, 0, "{summary:?}");
    assert_eq!(summary.retries, 0, "{summary:?}");
    assert_eq!(summary.worker_restarts, 0, "{summary:?}");
    assert!(summary.dead_letters.is_empty(), "{summary:?}");
    // The telemetry registry must tell the same story as the summary: the
    // three verdict-tier counters partition exactly the windows this run
    // produced (snapshot deltas isolate this run from other tests sharing
    // the process-global registry).
    if logsynergy_telemetry::enabled() {
        let d = |name: &str| tele_after.counter_delta(&tele_before, name);
        assert_eq!(d("pipeline.logs"), summary.logs, "telemetry log count");
        assert_eq!(
            d("pipeline.tier.pattern") + d("pipeline.tier.cache") + d("pipeline.tier.model"),
            summary.windows,
            "tier counters must partition the windows"
        );
        assert_eq!(
            d("pipeline.degraded") + d("pipeline.shed") + d("pipeline.quarantined"),
            0,
            "robustness counters must stay silent in a fault-free run"
        );
        assert_eq!(
            d("pipeline.windows"),
            summary.windows,
            "telemetry window count"
        );
        assert_eq!(
            d("pipeline.reports"),
            summary.reports,
            "telemetry report count"
        );
    }
    // Alert volume sanity: reports should be a small fraction of windows
    // (operators are not flooded).
    assert!(
        summary.reports * 4 < summary.windows,
        "too many alerts: {summary:?}"
    );
    // Reports must reference real anomalous regions more often than not:
    // check each report's window overlaps an anomalous live log.
    let anomalous_ts: std::collections::HashSet<u64> = live
        .iter()
        .filter(|r| r.anomalous)
        .map(|r| r.timestamp)
        .collect();
    let hits = sink
        .reports()
        .iter()
        .filter(|r| (r.start_timestamp..=r.end_timestamp).any(|t| anomalous_ts.contains(&t)))
        .count();
    assert!(
        hits * 2 >= sink.len(),
        "at least half the alerts should cover true anomalies: {hits}/{}",
        sink.len()
    );
}
