//! Paper-shape assertions on the lighter experiments (the heavyweight
//! Table IV/V shapes are asserted by `end_to_end.rs` on one target and
//! regenerated in full by the bench harness).

use logsynergy_eval::experiments::{fig6, fig8_case_study, table3};
use logsynergy_eval::ExperimentConfig;

#[test]
fn table3_shapes_follow_paper_proportions() {
    let cfg = ExperimentConfig {
        logs_per_dataset: 4_000,
        ..ExperimentConfig::quick()
    };
    let rows = table3(&cfg);
    assert_eq!(rows.len(), 6);
    // Sequences ≈ logs / step (5).
    for r in &rows {
        let ratio = r.gen_logs as f64 / r.gen_sequences as f64;
        assert!(
            (4.0..6.5).contains(&ratio),
            "{}: logs/seq ratio {ratio}",
            r.dataset
        );
        assert!(r.gen_anomalies > 0);
        assert!(
            r.gen_anomalies * 3 < r.gen_sequences,
            "{}: anomalies are a minority",
            r.dataset
        );
    }
    // BGL is the anomaly-densest dataset, as in the paper.
    let rate = |name: &str| {
        let r = rows.iter().find(|r| r.dataset == name).unwrap();
        r.gen_anomalies as f64 / r.gen_sequences as f64
    };
    assert!(
        rate("BGL") > rate("System B"),
        "BGL must be denser than System B"
    );
}

#[test]
fn fig6_transfer_asymmetry_holds() {
    let cfg = ExperimentConfig::quick();
    let results = fig6(&cfg);
    assert_eq!(results.len(), 4);
    let f1 = |src: &str, tgt: &str| {
        results
            .iter()
            .find(|r| r.source == src && r.target == tgt)
            .map(|r| r.result.prf.f1)
            .unwrap()
    };
    let rich_to_simple = (f1("BGL", "System B") + f1("Spirit", "System C")) / 2.0;
    let simple_to_rich = (f1("System B", "BGL") + f1("System C", "Spirit")) / 2.0;
    assert!(
        rich_to_simple > simple_to_rich + 15.0,
        "rich->simple {rich_to_simple:.1} must dominate simple->rich {simple_to_rich:.1}"
    );
    assert!(
        rich_to_simple > 70.0,
        "rich->simple should be strong: {rich_to_simple:.1}"
    );
}

#[test]
fn fig8_lei_reduces_misleading_similarity() {
    let cfg = ExperimentConfig {
        logs_per_dataset: 5_000,
        ..ExperimentConfig::quick()
    };
    let cs = fig8_case_study(&cfg);
    assert!(
        cs.raw_margin > 0.0,
        "a misleading raw pair must exist: {}",
        cs.raw_margin
    );
    assert!(
        cs.lei_margin < 0.0,
        "LEI must resolve the confusion: {}",
        cs.lei_margin
    );
}
