//! Cross-crate integration: generator → parser → LEI → embeddings →
//! training → detection, asserting the paper's headline behaviors.

use logsynergy_eval::experiments::sources_of;
use logsynergy_eval::{prepare_group, run_method, ExperimentConfig, MethodKind, SystemData};
use logsynergy_loggen::SystemId;

fn run_target(target: SystemId, kinds: &[MethodKind]) -> Vec<(MethodKind, f64, f64, f64)> {
    let cfg = ExperimentConfig::quick();
    let mut systems = sources_of(target);
    systems.push(target);
    let data = prepare_group(&systems, &cfg);
    let n = data.len();
    let sources: Vec<&SystemData> = data[..n - 1].iter().collect();
    kinds
        .iter()
        .map(|&k| {
            let r = run_method(k, &sources, &data[n - 1], &cfg);
            (k, r.prf.precision, r.prf.recall, r.prf.f1)
        })
        .collect()
}

#[test]
fn logsynergy_beats_representative_baselines_on_thunderbird() {
    let rows = run_target(
        SystemId::Thunderbird,
        &[
            MethodKind::LogSynergy,
            MethodKind::DeepLog,
            MethodKind::LogRobust,
            MethodKind::LogTAD,
        ],
    );
    let f1 = |k: MethodKind| rows.iter().find(|r| r.0 == k).unwrap().3;
    let ls = f1(MethodKind::LogSynergy);
    assert!(ls > 85.0, "LogSynergy F1 {ls} too low: {rows:?}");
    assert!(ls > f1(MethodKind::DeepLog), "{rows:?}");
    assert!(ls > f1(MethodKind::LogRobust), "{rows:?}");
    assert!(ls > f1(MethodKind::LogTAD), "{rows:?}");
}

#[test]
fn unsupervised_methods_show_low_precision_high_recall() {
    let rows = run_target(SystemId::Thunderbird, &[MethodKind::DeepLog]);
    let (_, p, r, _) = rows[0];
    assert!(r > 80.0, "DeepLog recall should be high: {rows:?}");
    assert!(p < 50.0, "DeepLog precision should be low: {rows:?}");
}

#[test]
fn ablations_degrade_logsynergy() {
    let rows = run_target(
        SystemId::Thunderbird,
        &[
            MethodKind::LogSynergy,
            MethodKind::LogSynergyNoLei,
            MethodKind::NeuralLogDirect,
        ],
    );
    let f1 = |k: MethodKind| rows.iter().find(|r| r.0 == k).unwrap().3;
    assert!(
        f1(MethodKind::LogSynergy) > f1(MethodKind::LogSynergyNoLei),
        "removing LEI must hurt: {rows:?}"
    );
    assert!(
        f1(MethodKind::LogSynergy) > f1(MethodKind::NeuralLogDirect),
        "transfer learning must beat direct application: {rows:?}"
    );
}
