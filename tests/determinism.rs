//! Reproducibility: the whole experiment stack is seeded, so identical
//! configurations must yield identical results.

use logsynergy_eval::experiments::sources_of;
use logsynergy_eval::{
    prepare, prepare_group, run_method, ExperimentConfig, MethodKind, SystemData,
};
use logsynergy_loggen::SystemId;

#[test]
fn preparation_is_deterministic() {
    let cfg = ExperimentConfig {
        logs_per_dataset: 3_000,
        ..ExperimentConfig::quick()
    };
    let a = prepare(SystemId::SystemC, &cfg);
    let b = prepare(SystemId::SystemC, &cfg);
    assert_eq!(a.raw.templates, b.raw.templates);
    assert_eq!(a.lei.event_texts, b.lei.event_texts);
    assert_eq!(a.raw.sequences.len(), b.raw.sequences.len());
    for (x, y) in a.raw.sequences.iter().zip(&b.raw.sequences) {
        assert_eq!(x.events, y.events);
        assert_eq!(x.label, y.label);
    }
    for (x, y) in a.lei.event_embeddings.iter().zip(&b.lei.event_embeddings) {
        assert_eq!(x, y);
    }
}

#[test]
fn full_method_run_is_deterministic() {
    let cfg = ExperimentConfig {
        logs_per_dataset: 5_000,
        n_source: 300,
        n_target: 120,
        max_test: 400,
        epochs: 2,
        ..ExperimentConfig::quick()
    };
    let target = SystemId::SystemB;
    let mut systems = sources_of(target);
    systems.push(target);

    let run = || {
        let data = prepare_group(&systems, &cfg);
        let n = data.len();
        let sources: Vec<&SystemData> = data[..n - 1].iter().collect();
        let r = run_method(MethodKind::LogSynergy, &sources, &data[n - 1], &cfg);
        (r.prf.precision, r.prf.recall, r.prf.f1)
    };
    assert_eq!(
        run(),
        run(),
        "seeded runs must reproduce bit-identical metrics"
    );
}
